// Package historian implements the data-storage component of the factory
// software stack: an in-memory time-series store that consumes machine data
// from broker topics and answers range and aggregate queries. It stands in
// for the databases of the paper's architecture while preserving the same
// role — "storing the machinery data within the databases".
package historian

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/wal"
)

// Point is one stored sample. Payload is opaque bytes — components store
// JSON, but the historian does not require it (snapshots base64-encode it).
type Point struct {
	Time    time.Time `json:"time"`
	Payload []byte    `json:"payload"`
}

// Float attempts to interpret the payload as a number (raw JSON number, or
// an object with a "value" field). The common shapes resolve through the
// allocation-free ingest parser (fastFloat, gorilla.go); a full JSON parse
// backstops exotic object encodings.
func (p Point) Float() (float64, bool) {
	if f, ok := fastFloat(p.Payload); ok {
		return f, true
	}
	var obj map[string]any
	if err := json.Unmarshal(p.Payload, &obj); err == nil {
		switch v := obj["value"].(type) {
		case float64:
			return v, true
		case string:
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				return f, true
			}
		}
	}
	return 0, false
}

// Store is a concurrency-safe multi-series store with bounded retention.
// A store opened with Open is durable: appends go through a write-ahead log
// and the exact state survives a crash (see durable.go). NewStore builds
// the volatile variant.
//
// Per series, points live in sealed immutable blocks (Gorilla-compressed
// when numeric, see block.go) plus a mutable head, with min/max/avg/count
// rollups at 1s/10s/60s maintained on every append (rollup.go) so windowed
// aggregates cost O(windows) instead of O(points).
type Store struct {
	mu           sync.RWMutex
	series       map[string]*seriesData
	maxPerSeries int
	appended     uint64

	// metas mirrors each series' cache-validity coordinates for lock-free
	// reads by the query cache (CacheInfo).
	metas sync.Map // series name -> *seriesMeta

	// sessions maps consumer session names to the highest sequence number
	// applied, the dedup state that makes redelivered batches idempotent.
	sessions map[string]uint64

	// Durable state, zero for volatile stores (durable.go).
	appendMu  sync.Mutex // serializes WAL append + apply, so LastLSN is consistent
	wal       *wal.Log
	dir       string
	fs        wal.FS
	snapEvery int
	sinceSnap int
	lastLSN   uint64 // highest LSN applied to the in-memory state
	encBuf    []byte // binary record scratch, guarded by appendMu
}

// NewStore creates a volatile store retaining up to maxPerSeries points per
// series (0 means the default of 10000).
func NewStore(maxPerSeries int) *Store {
	if maxPerSeries <= 0 {
		maxPerSeries = 10000
	}
	return &Store{series: map[string]*seriesData{}, maxPerSeries: maxPerSeries, sessions: map[string]uint64{}}
}

// Append stores a sample. Samples are expected in non-decreasing time
// order per series; out-of-order samples are inserted by time.
func (s *Store) Append(series string, t time.Time, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(series, t, payload)
}

// Sample is one ingestible datum for AppendBatch.
type Sample struct {
	Series  string
	Payload []byte
}

// AppendBatch stores many samples with the timestamp t under a single lock
// acquisition — the broker-fed ingest path drains its subscription channel
// into batches so ingestion cost is amortized instead of paying one
// lock/unlock per message. Payloads are copied, as in Append. On a durable
// store the batch is WAL-logged and fsynced before it is applied; the error
// is always nil for volatile stores.
func (s *Store) AppendBatch(t time.Time, samples []Sample) error {
	if len(samples) == 0 {
		return nil
	}
	if s.wal != nil {
		return s.appendDurable("", 0, t, samples)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sm := range samples {
		s.appendLocked(sm.Series, t, sm.Payload)
	}
	return nil
}

// AppendAcked stores a batch delivered on an acked broker session: seq is
// the batch's last sequence number, and a batch at or below the session's
// high-water mark is skipped — the dedup that makes broker redelivery and
// replayed acks idempotent, turning at-least-once delivery into
// exactly-once storage. On a durable store the batch is fsynced to the WAL
// before it is applied, so the caller may ack the broker once AppendAcked
// returns nil.
func (s *Store) AppendAcked(session string, seq uint64, t time.Time, samples []Sample) error {
	if session == "" {
		return errors.New("historian: AppendAcked requires a session name")
	}
	s.mu.RLock()
	applied := s.sessions[session]
	s.mu.RUnlock()
	if seq <= applied {
		return nil // duplicate redelivery
	}
	if s.wal != nil {
		return s.appendDurable(session, seq, t, samples)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sm := range samples {
		s.appendLocked(sm.Series, t, sm.Payload)
	}
	if seq > s.sessions[session] {
		s.sessions[session] = seq
	}
	return nil
}

// SessionSeq returns the highest applied sequence for a consumer session —
// the resume point a restarted consumer passes as FromSeq.
func (s *Store) SessionSeq(session string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[session]
}

// appendLocked inserts one sample; callers hold s.mu. The ordering contract
// with the lock-free query cache: data mutations happen before the matching
// seriesMeta updates, so a cache entry tagged with a generation read before
// its computation can never describe newer state than its tag claims.
func (s *Store) appendLocked(series string, t time.Time, payload []byte) {
	sd := s.series[series]
	if sd == nil {
		sd = newSeriesData()
		s.series[series] = sd
		s.metas.Store(series, sd.meta)
	}
	tn := t.UnixNano()
	val, numeric := fastFloat(payload)
	hp := headPoint{t: t, tn: tn, payload: append([]byte(nil), payload...), val: val, numeric: numeric}
	if sd.total > 0 && tn < sd.last.tn {
		// Out of order: insert sorted within the head (after any equal
		// instants). A point that predates every sealed block lands at the
		// head front; Range compensates by sorting merged output once the
		// overlap flag is set. Settled history changed, so bump gen.
		i := sort.Search(len(sd.head), func(i int) bool { return sd.head[i].tn > tn })
		sd.head = append(sd.head, headPoint{})
		copy(sd.head[i+1:], sd.head[i:])
		sd.head[i] = hp
		if i == 0 && len(sd.blocks) > 0 {
			sd.overlap = true
		}
		if numeric {
			sd.rollups.add(tn, val)
		}
		sd.total++
		sd.meta.gen.Add(1)
	} else {
		sd.head = append(sd.head, hp)
		sd.last = hp
		if numeric && sd.rollups.add(tn, val) {
			sd.meta.gen.Add(1) // ring eviction: coverage shrank
		}
		sd.total++
	}
	s.appended++
	if len(sd.head) >= blockSize {
		sd.seal()
	}
	if sd.total > s.maxPerSeries {
		sd.dropOldest()
	}
	sd.updateBoundary()
}

// Series lists stored series names, sorted.
func (s *Store) Series() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored points in a series.
func (s *Store) Count(series string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sd := s.series[series]; sd != nil {
		return sd.total
	}
	return 0
}

// TotalAppended returns the lifetime number of appended points.
func (s *Store) TotalAppended() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appended
}

// Latest returns the most recent point of a series.
func (s *Store) Latest(series string) (Point, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd := s.series[series]
	if sd == nil || sd.total == 0 {
		return Point{}, fmt.Errorf("historian: series %q is empty", series)
	}
	// sd.last is always live while the series is non-empty: retention
	// drops from the front and can never reach the newest point.
	return sd.last.point(), nil
}

// Range returns points with from <= t < to, in time order. The result is
// a fresh copy — payload bytes never alias internal storage, so callers
// may hold or mutate them while appends continue.
func (s *Store) Range(series string, from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd := s.series[series]
	if sd == nil {
		return nil
	}
	f, t := from.UnixNano(), to.UnixNano()
	if t <= f {
		return nil
	}
	var out []Point
	sd.collectRange(f, t, &out)
	return out
}

// Aggregate summarizes numeric samples in [from, to).
type Aggregate struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
}

// ErrNoNumericData reports that a range held no numeric samples.
var ErrNoNumericData = errors.New("historian: no numeric data in range")

// AggregateRange computes Count/Min/Max/Mean over numeric samples in
// [from, to). Spans the rollup rings cover are answered from ingest-time
// buckets in O(windows); only unaligned edges and history older than the
// rings scan points. Aggregates outlive raw retention: a bucket keeps
// counting points whose payloads have aged out of Range.
func (s *Store) AggregateRange(series string, from, to time.Time) (Aggregate, error) {
	agg, _, err := s.AggregateWindow(series, from, to)
	return agg, err
}

// AggregateWindow is AggregateRange plus a rollupOnly result: whether the
// answer came entirely from rollup buckets (or provably empty spans) and so
// cannot change when retention drops raw points — the property the query
// cache keys on (query.go).
func (s *Store) AggregateWindow(series string, from, to time.Time) (Aggregate, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd := s.series[series]
	if sd == nil {
		return Aggregate{}, true, ErrNoNumericData
	}
	acc := sd.aggRange(from.UnixNano(), to.UnixNano(), 0)
	if acc.count == 0 {
		return Aggregate{}, acc.rollupOnly, ErrNoNumericData
	}
	return Aggregate{
		Count: acc.count,
		Min:   acc.min,
		Max:   acc.max,
		Mean:  acc.sum / float64(acc.count),
	}, acc.rollupOnly, nil
}

// CacheInfo returns the lock-free cache-validity coordinates of a series:
// the settled-history generation (changes on block seal, out-of-order
// append and rollup eviction), the cacheability boundary (windows ending at
// or before it cannot be changed by in-order appends), and the retention
// drop counter (invalidates scan-backed results only). ok is false until
// the series has received its first point.
func (s *Store) CacheInfo(series string) (gen uint64, boundary int64, drops uint64, ok bool) {
	v, ok := s.metas.Load(series)
	if !ok {
		return 0, 0, 0, false
	}
	m := v.(*seriesMeta)
	// gen loads first: an entry tagged with this gen and computed afterwards
	// can only be newer than the tag, never staler (see appendLocked).
	return m.gen.Load(), m.boundary.Load(), m.drops.Load(), true
}

// ---------------------------------------------------------------------------
// Broker-fed service

// Service subscribes to broker topics and stores everything it receives,
// keyed by topic.
type Service struct {
	Store *Store

	client    *broker.Client
	subIDs    []int
	wg        sync.WaitGroup
	mu        sync.Mutex
	stopped   bool
	failErr   error
	ownsStore bool

	// Now returns the ingestion timestamp; overridable in tests.
	Now func() time.Time
}

// NewService creates a historian service over its own broker connection.
func NewService(brokerAddr string, topics []string, maxPerSeries int) (*Service, error) {
	return NewServiceWithStore(brokerAddr, topics, NewStore(maxPerSeries))
}

// NewServiceWithStore creates a historian service that ingests into an
// existing store over plain (drop-oldest) subscriptions. The pod supervisor
// used this to restart a historian without losing the data it had already
// accumulated; the loss-bounded variants below are preferred.
func NewServiceWithStore(brokerAddr string, topics []string, store *Store) (*Service, error) {
	return newService(brokerAddr, "", topics, store, false)
}

// NewAckedService creates a historian service that ingests over acked
// at-least-once broker sessions named "historian/<name>/<topic>". Each
// batch is acknowledged only after the store accepted it, and on restart
// the service resumes every session from the store's high-water sequence —
// with a store that survives the restart (a supervisor-held volatile store,
// or a durable one) no sample is lost or double-counted.
func NewAckedService(brokerAddr, name string, topics []string, store *Store) (*Service, error) {
	if name == "" {
		return nil, errors.New("historian: acked service requires a name")
	}
	return newService(brokerAddr, name, topics, store, false)
}

// NewDurableService opens (or recovers) the durable store in dir and
// ingests into it over acked sessions. The full loss-bounded path: broker
// redelivers until the batch is fsynced in the WAL, the WAL replays on
// restart, and session sequence dedup makes the overlap idempotent.
func NewDurableService(brokerAddr, name string, topics []string, dir string, opts DurableOptions) (*Service, error) {
	if name == "" {
		return nil, errors.New("historian: durable service requires a name")
	}
	store, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	svc, err := newService(brokerAddr, name, topics, store, true)
	if err != nil {
		store.Close()
		return nil, err
	}
	return svc, nil
}

func newService(brokerAddr, name string, topics []string, store *Store, ownsStore bool) (*Service, error) {
	client, err := broker.DialClient(brokerAddr)
	if err != nil {
		return nil, fmt.Errorf("historian: %w", err)
	}
	if store == nil {
		store = NewStore(0)
	}
	svc := &Service{Store: store, client: client, ownsStore: ownsStore, Now: time.Now}
	for _, topic := range topics {
		if name == "" {
			id, ch, err := client.Subscribe(topic)
			if err != nil {
				client.Close()
				return nil, fmt.Errorf("historian: subscribe %q: %w", topic, err)
			}
			svc.subIDs = append(svc.subIDs, id)
			svc.wg.Add(1)
			go svc.pump(ch)
			continue
		}
		session := "historian/" + name + "/" + topic
		id, ch, err := client.SubscribeSession(topic, session, store.SessionSeq(session))
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("historian: subscribe %q session %q: %w", topic, session, err)
		}
		svc.subIDs = append(svc.subIDs, id)
		svc.wg.Add(1)
		go svc.pumpAcked(id, session, ch)
	}
	return svc, nil
}

// ingestBatch bounds how many queued messages one pump iteration drains
// into a single AppendBatch call.
const ingestBatch = 256

func (s *Service) pump(ch <-chan broker.Message) {
	defer s.wg.Done()
	samples := make([]Sample, 0, ingestBatch)
	for m := range ch {
		samples = append(samples[:0], Sample{Series: m.Topic, Payload: m.Payload})
	drain:
		for len(samples) < ingestBatch {
			select {
			case m, ok := <-ch:
				if !ok {
					break drain
				}
				samples = append(samples, Sample{Series: m.Topic, Payload: m.Payload})
			default:
				break drain
			}
		}
		if err := s.Store.AppendBatch(s.Now(), samples); err != nil {
			s.fail(err)
			return
		}
	}
}

// pumpAcked drains one acked session, storing then acknowledging each
// batch. Ack-after-store is the loss bound: a crash between the two costs
// a redelivery the store dedups, never a lost sample. A store error stops
// the pump without acking — Health degrades and the supervisor restarts
// the pod through the recovery path.
func (s *Service) pumpAcked(subID int, session string, ch <-chan broker.Message) {
	defer s.wg.Done()
	samples := make([]Sample, 0, ingestBatch)
	for m := range ch {
		samples = append(samples[:0], Sample{Series: m.Topic, Payload: m.Payload})
		lastSeq := m.Seq
	drain:
		for len(samples) < ingestBatch {
			select {
			case m, ok := <-ch:
				if !ok {
					break drain
				}
				samples = append(samples, Sample{Series: m.Topic, Payload: m.Payload})
				lastSeq = m.Seq
			default:
				break drain
			}
		}
		if err := s.Store.AppendAcked(session, lastSeq, s.Now(), samples); err != nil {
			s.fail(err)
			return
		}
		if err := s.client.Ack(subID, lastSeq); err != nil {
			// The connection is gone; the broker will redeliver to the next
			// attachment and the store's session seq dedups the overlap.
			return
		}
	}
}

func (s *Service) fail(err error) {
	s.mu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.mu.Unlock()
}

// Health reports whether the historian is still ingesting: it must not be
// closed, its broker connection must be alive, its pumps must not have hit
// a storage error, and a durable store's WAL must not be poisoned.
func (s *Service) Health() error {
	s.mu.Lock()
	stopped, failErr := s.stopped, s.failErr
	s.mu.Unlock()
	if stopped {
		return errors.New("historian: closed")
	}
	if failErr != nil {
		return fmt.Errorf("historian: ingest failed: %w", failErr)
	}
	if err := s.Store.Err(); err != nil {
		return fmt.Errorf("historian: %w", err)
	}
	if err := s.client.Err(); err != nil {
		return fmt.Errorf("historian: %w", err)
	}
	return nil
}

// Close stops ingestion and drops the broker connection; a service that
// owns a durable store closes it too.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	err := s.client.Close()
	s.wg.Wait()
	if s.ownsStore {
		if cerr := s.Store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
