// Package historian implements the data-storage component of the factory
// software stack: an in-memory time-series store that consumes machine data
// from broker topics and answers range and aggregate queries. It stands in
// for the databases of the paper's architecture while preserving the same
// role — "storing the machinery data within the databases".
package historian

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
)

// Point is one stored sample. Payload is opaque bytes — components store
// JSON, but the historian does not require it (snapshots base64-encode it).
type Point struct {
	Time    time.Time `json:"time"`
	Payload []byte    `json:"payload"`
}

// Float attempts to interpret the payload as a number (raw JSON number, or
// an object with a "value" field).
func (p Point) Float() (float64, bool) {
	var f float64
	if err := json.Unmarshal(p.Payload, &f); err == nil {
		return f, true
	}
	var obj map[string]any
	if err := json.Unmarshal(p.Payload, &obj); err == nil {
		switch v := obj["value"].(type) {
		case float64:
			return v, true
		case string:
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				return f, true
			}
		}
	}
	return 0, false
}

// Store is a concurrency-safe multi-series store with bounded retention.
type Store struct {
	mu           sync.RWMutex
	series       map[string][]Point
	maxPerSeries int
	appended     uint64
}

// NewStore creates a store retaining up to maxPerSeries points per series
// (0 means the default of 10000).
func NewStore(maxPerSeries int) *Store {
	if maxPerSeries <= 0 {
		maxPerSeries = 10000
	}
	return &Store{series: map[string][]Point{}, maxPerSeries: maxPerSeries}
}

// Append stores a sample. Samples are expected in non-decreasing time
// order per series; out-of-order samples are inserted by time.
func (s *Store) Append(series string, t time.Time, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(series, t, payload)
}

// Sample is one ingestible datum for AppendBatch.
type Sample struct {
	Series  string
	Payload []byte
}

// AppendBatch stores many samples with the timestamp t under a single lock
// acquisition — the broker-fed ingest path drains its subscription channel
// into batches so ingestion cost is amortized instead of paying one
// lock/unlock per message. Payloads are copied, as in Append.
func (s *Store) AppendBatch(t time.Time, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sm := range samples {
		s.appendLocked(sm.Series, t, sm.Payload)
	}
}

// appendLocked inserts one sample; callers hold s.mu.
func (s *Store) appendLocked(series string, t time.Time, payload []byte) {
	p := Point{Time: t, Payload: append([]byte(nil), payload...)}
	pts := s.series[series]
	if n := len(pts); n > 0 && pts[n-1].Time.After(t) {
		i := sort.Search(n, func(i int) bool { return pts[i].Time.After(t) })
		pts = append(pts, Point{})
		copy(pts[i+1:], pts[i:])
		pts[i] = p
	} else {
		pts = append(pts, p)
	}
	if len(pts) > s.maxPerSeries {
		pts = pts[len(pts)-s.maxPerSeries:]
	}
	s.series[series] = pts
	s.appended++
}

// Series lists stored series names, sorted.
func (s *Store) Series() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored points in a series.
func (s *Store) Count(series string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series[series])
}

// TotalAppended returns the lifetime number of appended points.
func (s *Store) TotalAppended() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appended
}

// Latest returns the most recent point of a series.
func (s *Store) Latest(series string) (Point, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pts := s.series[series]
	if len(pts) == 0 {
		return Point{}, fmt.Errorf("historian: series %q is empty", series)
	}
	return pts[len(pts)-1], nil
}

// Range returns points with from <= t < to, in time order.
func (s *Store) Range(series string, from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pts := s.series[series]
	lo := sort.Search(len(pts), func(i int) bool { return !pts[i].Time.Before(from) })
	hi := sort.Search(len(pts), func(i int) bool { return !pts[i].Time.Before(to) })
	out := make([]Point, hi-lo)
	copy(out, pts[lo:hi])
	return out
}

// Aggregate summarizes numeric samples in [from, to).
type Aggregate struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
}

// ErrNoNumericData reports that a range held no numeric samples.
var ErrNoNumericData = errors.New("historian: no numeric data in range")

// AggregateRange computes Count/Min/Max/Mean over numeric samples.
func (s *Store) AggregateRange(series string, from, to time.Time) (Aggregate, error) {
	pts := s.Range(series, from, to)
	agg := Aggregate{}
	sum := 0.0
	for _, p := range pts {
		f, ok := p.Float()
		if !ok {
			continue
		}
		if agg.Count == 0 {
			agg.Min, agg.Max = f, f
		} else {
			if f < agg.Min {
				agg.Min = f
			}
			if f > agg.Max {
				agg.Max = f
			}
		}
		agg.Count++
		sum += f
	}
	if agg.Count == 0 {
		return agg, ErrNoNumericData
	}
	agg.Mean = sum / float64(agg.Count)
	return agg, nil
}

// ---------------------------------------------------------------------------
// Broker-fed service

// Service subscribes to broker topics and stores everything it receives,
// keyed by topic.
type Service struct {
	Store *Store

	client  *broker.Client
	subIDs  []int
	wg      sync.WaitGroup
	mu      sync.Mutex
	stopped bool

	// Now returns the ingestion timestamp; overridable in tests.
	Now func() time.Time
}

// NewService creates a historian service over its own broker connection.
func NewService(brokerAddr string, topics []string, maxPerSeries int) (*Service, error) {
	return NewServiceWithStore(brokerAddr, topics, NewStore(maxPerSeries))
}

// NewServiceWithStore creates a historian service that ingests into an
// existing store. The pod supervisor uses this to restart a historian
// without losing the data it had already accumulated.
func NewServiceWithStore(brokerAddr string, topics []string, store *Store) (*Service, error) {
	client, err := broker.DialClient(brokerAddr)
	if err != nil {
		return nil, fmt.Errorf("historian: %w", err)
	}
	if store == nil {
		store = NewStore(0)
	}
	svc := &Service{Store: store, client: client, Now: time.Now}
	for _, topic := range topics {
		id, ch, err := client.Subscribe(topic)
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("historian: subscribe %q: %w", topic, err)
		}
		svc.subIDs = append(svc.subIDs, id)
		svc.wg.Add(1)
		go svc.pump(ch)
	}
	return svc, nil
}

// ingestBatch bounds how many queued messages one pump iteration drains
// into a single AppendBatch call.
const ingestBatch = 256

func (s *Service) pump(ch <-chan broker.Message) {
	defer s.wg.Done()
	samples := make([]Sample, 0, ingestBatch)
	for m := range ch {
		samples = append(samples[:0], Sample{Series: m.Topic, Payload: m.Payload})
	drain:
		for len(samples) < ingestBatch {
			select {
			case m, ok := <-ch:
				if !ok {
					break drain
				}
				samples = append(samples, Sample{Series: m.Topic, Payload: m.Payload})
			default:
				break drain
			}
		}
		s.Store.AppendBatch(s.Now(), samples)
	}
}

// Health reports whether the historian is still ingesting: it must not be
// closed and its broker connection must be alive.
func (s *Service) Health() error {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return errors.New("historian: closed")
	}
	if err := s.client.Err(); err != nil {
		return fmt.Errorf("historian: %w", err)
	}
	return nil
}

// Close stops ingestion and drops the broker connection.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	err := s.client.Close()
	s.wg.Wait()
	return err
}
