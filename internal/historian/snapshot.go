package historian

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Snapshot is the serializable state of a Store — the persistence format
// used to checkpoint and restore historians across restarts (a stand-in
// for the durable databases of the paper's architecture).
//
// Version history:
//
//	1: Series + MaxPerSeries.
//	2: adds Sessions (per-consumer-session high-water sequence numbers) and
//	   LastLSN (the WAL position the snapshot covers), so a durable store
//	   restores exactly-once ingest state and replays only the WAL suffix.
type Snapshot struct {
	Version      int                `json:"version"`
	TakenAt      time.Time          `json:"takenAt"`
	MaxPerSeries int                `json:"maxPerSeries"`
	Series       map[string][]Point `json:"series"`
	Sessions     map[string]uint64  `json:"sessions,omitempty"`
	LastLSN      uint64             `json:"lastLsn,omitempty"`
}

// snapshotVersion is the current persistence format version.
const snapshotVersion = 2

// Snapshot captures the store's full contents.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{
		Version:      snapshotVersion,
		TakenAt:      time.Now().UTC(),
		MaxPerSeries: s.maxPerSeries,
		Series:       make(map[string][]Point, len(s.series)),
		LastLSN:      s.lastLSN,
	}
	for name, sd := range s.series {
		if sd.total == 0 {
			snap.Series[name] = []Point{}
			continue
		}
		pts := make([]Point, 0, sd.total)
		sd.collectRange(math.MinInt64, math.MaxInt64, &pts)
		snap.Series[name] = pts
	}
	if len(s.sessions) > 0 {
		snap.Sessions = make(map[string]uint64, len(s.sessions))
		for k, v := range s.sessions {
			snap.Sessions[k] = v
		}
	}
	return snap
}

// WriteSnapshot streams the snapshot as JSON.
func (s *Store) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s.Snapshot()); err != nil {
		return fmt.Errorf("historian: write snapshot: %w", err)
	}
	return nil
}

// RestoreStore reconstructs a store from a snapshot stream. Points are
// re-appended in time order per series, so retention bounds apply. Every
// format version up to the current one restores; a snapshot written by a
// newer version is rejected rather than silently misread.
func RestoreStore(r io.Reader) (*Store, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("historian: read snapshot: %w", err)
	}
	if snap.Version > snapshotVersion {
		return nil, fmt.Errorf("historian: snapshot version %d was written by a newer version (this build reads up to %d); refusing to misread it", snap.Version, snapshotVersion)
	}
	if snap.Version < 1 {
		return nil, fmt.Errorf("historian: invalid snapshot version %d", snap.Version)
	}
	store := NewStore(snap.MaxPerSeries)
	names := make([]string, 0, len(snap.Series))
	for name := range snap.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range snap.Series[name] {
			store.Append(name, p.Time, p.Payload)
		}
	}
	for k, v := range snap.Sessions {
		store.sessions[k] = v
	}
	store.lastLSN = snap.LastLSN
	return store, nil
}
