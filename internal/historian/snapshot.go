package historian

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Snapshot is the serializable state of a Store — the persistence format
// used to checkpoint and restore historians across restarts (a stand-in
// for the durable databases of the paper's architecture).
//
// Version history:
//
//	1: Series + MaxPerSeries.
//	2: adds Sessions (per-consumer-session high-water sequence numbers) and
//	   LastLSN (the WAL position the snapshot covers), so a durable store
//	   restores exactly-once ingest state and replays only the WAL suffix.
//	3: adds Rollups (the per-series ingest-time aggregate rings), so the
//	   aggregates-outlive-retention contract survives recovery — rollup
//	   buckets counting points already dropped by retention restore intact
//	   instead of being rebuilt from retained points only.
type Snapshot struct {
	Version      int                   `json:"version"`
	TakenAt      time.Time             `json:"takenAt"`
	MaxPerSeries int                   `json:"maxPerSeries"`
	Series       map[string][]Point    `json:"series"`
	Sessions     map[string]uint64     `json:"sessions,omitempty"`
	LastLSN      uint64                `json:"lastLsn,omitempty"`
	Rollups      map[string][]RingSnap `json:"rollups,omitempty"`
}

// RingSnap is one serialized rollup ring: the consecutive buckets
// [FirstIdx, FirstIdx+len(Buckets)) of the Win-wide grid, linearized in
// index order. Rings that retained nothing are omitted.
type RingSnap struct {
	Win      int64        `json:"win"`
	FirstIdx int64        `json:"firstIdx"`
	Buckets  []BucketSnap `json:"buckets"`
}

// BucketSnap is one serialized rollup bucket.
type BucketSnap struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
}

// snapshotVersion is the current persistence format version.
const snapshotVersion = 3

// Snapshot captures the store's full contents.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{
		Version:      snapshotVersion,
		TakenAt:      time.Now().UTC(),
		MaxPerSeries: s.maxPerSeries,
		Series:       make(map[string][]Point, len(s.series)),
		LastLSN:      s.lastLSN,
	}
	for name, sd := range s.series {
		if rings := snapRollups(&sd.rollups); len(rings) > 0 {
			if snap.Rollups == nil {
				snap.Rollups = map[string][]RingSnap{}
			}
			snap.Rollups[name] = rings
		}
		if sd.total == 0 {
			snap.Series[name] = []Point{}
			continue
		}
		pts := make([]Point, 0, sd.total)
		sd.collectRange(math.MinInt64, math.MaxInt64, &pts)
		snap.Series[name] = pts
	}
	if len(s.sessions) > 0 {
		snap.Sessions = make(map[string]uint64, len(s.sessions))
		for k, v := range s.sessions {
			snap.Sessions[k] = v
		}
	}
	return snap
}

// WriteSnapshot streams the snapshot as JSON.
func (s *Store) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s.Snapshot()); err != nil {
		return fmt.Errorf("historian: write snapshot: %w", err)
	}
	return nil
}

// snapRollups serializes a series' non-empty rollup rings, linearized in
// bucket-index order. Callers hold the store lock (any mode — rings only
// mutate under the write lock).
func snapRollups(rs *rollupSet) []RingSnap {
	var out []RingSnap
	for i := range rs.rings {
		r := &rs.rings[i]
		if r.n == 0 {
			continue
		}
		buckets := make([]BucketSnap, r.n)
		for j := 0; j < r.n; j++ {
			b := r.slot(j)
			buckets[j] = BucketSnap{Count: b.count, Min: b.min, Max: b.max, Sum: b.sum}
		}
		out = append(out, RingSnap{Win: r.win, FirstIdx: r.firstIdx, Buckets: buckets})
	}
	return out
}

// restoreRollups overwrites a series' rings with their serialized state.
// The persisted rings already include every retained point's contribution
// (rollups are maintained at ingest), so wholesale replacement — not a
// merge with the rings rebuilt by re-appending — reproduces the pre-snapshot
// state exactly, dropped-point contributions included. Snapshots from
// versions without Rollups leave the rebuilt rings in place: those restore
// with the old retained-points-only aggregates.
func restoreRollups(rs *rollupSet, rings []RingSnap) {
	for _, snap := range rings {
		if len(snap.Buckets) == 0 {
			continue
		}
		for i := range rs.rings {
			r := &rs.rings[i]
			if r.win != snap.Win || len(snap.Buckets) > r.limit {
				continue
			}
			buckets := make([]rollupBucket, len(snap.Buckets))
			for j, b := range snap.Buckets {
				buckets[j] = rollupBucket{count: b.Count, min: b.Min, max: b.Max, sum: b.Sum}
			}
			r.buckets, r.firstIdx, r.start, r.n = buckets, snap.FirstIdx, 0, len(buckets)
		}
	}
}

// RestoreStore reconstructs a store from a snapshot stream. Points are
// re-appended in time order per series, so retention bounds apply. Every
// format version up to the current one restores; a snapshot written by a
// newer version is rejected rather than silently misread.
func RestoreStore(r io.Reader) (*Store, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("historian: read snapshot: %w", err)
	}
	if snap.Version > snapshotVersion {
		return nil, fmt.Errorf("historian: snapshot version %d was written by a newer version (this build reads up to %d); refusing to misread it", snap.Version, snapshotVersion)
	}
	if snap.Version < 1 {
		return nil, fmt.Errorf("historian: invalid snapshot version %d", snap.Version)
	}
	store := NewStore(snap.MaxPerSeries)
	names := make([]string, 0, len(snap.Series))
	for name := range snap.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range snap.Series[name] {
			store.Append(name, p.Time, p.Payload)
		}
	}
	for name, rings := range snap.Rollups {
		sd := store.series[name]
		if sd == nil {
			// Every raw point aged out before the snapshot; the rollups are
			// all that remains of the series.
			sd = newSeriesData()
			store.series[name] = sd
			store.metas.Store(name, sd.meta)
		}
		restoreRollups(&sd.rollups, rings)
	}
	for k, v := range snap.Sessions {
		store.sessions[k] = v
	}
	store.lastLSN = snap.LastLSN
	return store, nil
}
