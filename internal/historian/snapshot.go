package historian

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is the serializable state of a Store — the persistence format
// used to checkpoint and restore historians across restarts (a stand-in
// for the durable databases of the paper's architecture).
type Snapshot struct {
	Version      int                `json:"version"`
	TakenAt      time.Time          `json:"takenAt"`
	MaxPerSeries int                `json:"maxPerSeries"`
	Series       map[string][]Point `json:"series"`
}

// snapshotVersion is the current persistence format version.
const snapshotVersion = 1

// Snapshot captures the store's full contents.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{
		Version:      snapshotVersion,
		TakenAt:      time.Now().UTC(),
		MaxPerSeries: s.maxPerSeries,
		Series:       make(map[string][]Point, len(s.series)),
	}
	for name, pts := range s.series {
		cp := make([]Point, len(pts))
		copy(cp, pts)
		snap.Series[name] = cp
	}
	return snap
}

// WriteSnapshot streams the snapshot as JSON.
func (s *Store) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s.Snapshot()); err != nil {
		return fmt.Errorf("historian: write snapshot: %w", err)
	}
	return nil
}

// RestoreStore reconstructs a store from a snapshot stream. Points are
// re-appended in time order per series, so retention bounds apply.
func RestoreStore(r io.Reader) (*Store, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("historian: read snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("historian: unsupported snapshot version %d", snap.Version)
	}
	store := NewStore(snap.MaxPerSeries)
	names := make([]string, 0, len(snap.Series))
	for name := range snap.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range snap.Series[name] {
			store.Append(name, p.Time, p.Payload)
		}
	}
	return store, nil
}
