package historian

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"
)

func gorillaPoints(ts []int64, vs []float64) []headPoint {
	pts := make([]headPoint, len(ts))
	for i := range ts {
		pts[i] = headPoint{tn: ts[i], val: vs[i], numeric: true}
	}
	return pts
}

func checkGorillaRoundTrip(t *testing.T, ts []int64, vs []float64) {
	t.Helper()
	enc := encodeGorilla(gorillaPoints(ts, vs))
	it := newGorillaIter(enc)
	for i := range ts {
		if !it.next() {
			t.Fatalf("decode stopped at point %d of %d", i, len(ts))
		}
		if it.t != ts[i] {
			t.Fatalf("point %d: time %d, want %d", i, it.t, ts[i])
		}
		if got := it.value(); math.Float64bits(got) != math.Float64bits(vs[i]) {
			t.Fatalf("point %d: value %v (bits %x), want %v (bits %x)", i, got, math.Float64bits(got), vs[i], math.Float64bits(vs[i]))
		}
	}
	if it.next() {
		t.Fatalf("decode yielded more than %d points", len(ts))
	}
}

func TestGorillaRoundTripSteady(t *testing.T) {
	// The telemetry shape the codec is built for: a fixed tick and a
	// slowly changing value with repeats.
	var ts []int64
	var vs []float64
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC).UnixNano()
	v := 12.25
	for i := 0; i < 2000; i++ {
		ts = append(ts, base+int64(i)*50_000_000)
		if i%7 == 0 {
			v += 0.25
		}
		vs = append(vs, v)
	}
	checkGorillaRoundTrip(t, ts, vs)
}

func TestGorillaRoundTripEdgeValues(t *testing.T) {
	vs := []float64{
		0, math.Copysign(0, -1), 1, -1, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.NaN(), math.Inf(1), math.Inf(-1), 1e-300, 12.25, 12.25,
	}
	ts := make([]int64, len(vs))
	for i := range ts {
		ts[i] = int64(i)
	}
	checkGorillaRoundTrip(t, ts, vs)
}

func TestGorillaRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(700)
		ts := make([]int64, n)
		vs := make([]float64, n)
		cur := rng.Int63n(1 << 60)
		for i := 0; i < n; i++ {
			// Jumps across every delta-of-delta bucket, including negative
			// deltas (out-of-order points sealed after a sort still encode).
			switch rng.Intn(4) {
			case 0: // steady
				cur += 1_000_000
			case 1: // jittered
				cur += 1_000_000 + rng.Int63n(20_000) - 10_000
			case 2: // large jump
				cur += rng.Int63n(1 << 40)
			case 3: // repeat timestamp
			}
			ts[i] = cur
			switch rng.Intn(3) {
			case 0:
				vs[i] = math.Float64frombits(rng.Uint64())
			case 1:
				vs[i] = float64(rng.Intn(1000)) / 4
			case 2:
				if i > 0 {
					vs[i] = vs[i-1]
				}
			}
		}
		checkGorillaRoundTrip(t, ts, vs)
	}
}

func TestGorillaTruncatedStream(t *testing.T) {
	ts := []int64{100, 200, 300, 400}
	vs := []float64{1, 2, 3, 4}
	enc := encodeGorilla(gorillaPoints(ts, vs))
	for cut := 0; cut < len(enc); cut++ {
		it := newGorillaIter(enc[:cut])
		n := 0
		for it.next() {
			n++
		}
		if n > len(ts) {
			t.Fatalf("cut %d: decoded %d points from truncated stream", cut, n)
		}
	}
}

func TestCanonFloatMatchesJSON(t *testing.T) {
	vals := []float64{
		0, 1, -1, 12.25, -12.25, 0.5, 3.5, 7.25, 100000, 1e20, 1e21, 1e22,
		1e-6, 1e-7, 2.5e-8, math.MaxFloat64, math.SmallestNonzeroFloat64,
		123456.789, -0.001,
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonFloat(nil, v); !bytes.Equal(got, want) {
			t.Errorf("canonFloat(%v) = %s, want %s (encoding/json)", v, got, want)
		}
	}
}

// TestFastFloatMatchesPointFloat pins the ingest-path parser to the public
// Point.Float semantics across the payload shapes the stack produces.
func TestFastFloatMatchesPointFloat(t *testing.T) {
	payloads := []string{
		"0", "1", "-1", "12.25", "0.5", "-0.5", "3.14159", "1e3", "1.5e-3",
		"2E+4", "100000000000000000000000", "0.00000000000000000001",
		"9007199254740993", "123456789012345678901234567890",
		"007", "--1", "1..2", "1.", ".5", "-", "", " 12.25 ", "\t3\n",
		"1e", "1e+", "0x10", "NaN", "Inf", "-Infinity", "null", "true",
		`"12.25"`, `"not numeric"`,
		`{"value": 3.5}`, `{"value":12.25}`, `{"value": "7.25"}`,
		`{"value": "abc"}`, `{"value": null}`, `{"value": true}`,
		`{"machine":"emco","variable":"actualX","value":12.25}`,
		`{"machine":"emco","variable":"actualX","value":12.25,"t":"x"}`,
		`{"other": 1}`, `{"value_x": 1}`, `{"note":"the \"value\" is","value":3}`,
		`{"value": -1e2}`, `{"value": 1.25e2}`, `not json at all`, `[1,2,3]`,
		`{"value":"NaN"}`, `{"value":"Inf"}`,
		// Only a top-level "value" key counts: nested objects and arrays must
		// classify exactly as Point.Float's full parse does.
		`{"a":{"value":5}}`, `{"a":{"value":5},"value":7}`,
		`{"value":{"x":1}}`, `{"nested":[{"value":1}],"value":2.5}`,
		`[{"value":3}]`, `{"a":"value","value":4}`,
		`{"a":["value"],"value":6}`, `{"a":{"b":{"value":9}}}`,
		`{"value"`, `{"unterminated`, `{"esc\`,
	}
	for _, s := range payloads {
		p := Point{Payload: []byte(s)}
		wantF, wantOK := p.Float()
		gotF, gotOK := fastFloat([]byte(s))
		// fastFloat never yields NaN/Inf: those payloads intentionally read
		// as non-numeric so rollups and compression stay finite.
		if wantOK && (math.IsNaN(wantF) || math.IsInf(wantF, 0)) {
			if gotOK {
				t.Errorf("fastFloat(%q) = %v, ok — want non-numeric for NaN/Inf", s, gotF)
			}
			continue
		}
		if gotOK != wantOK || (gotOK && gotF != wantF) {
			t.Errorf("fastFloat(%q) = (%v, %v), Point.Float = (%v, %v)", s, gotF, gotOK, wantF, wantOK)
		}
	}
}

func TestFastFloatRandomNumbers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		var s string
		switch i % 4 {
		case 0:
			s = strconv.FormatFloat(rng.NormFloat64()*math.Pow(10, float64(rng.Intn(40)-20)), 'f', -1, 64)
		case 1:
			s = strconv.FormatFloat(math.Float64frombits(rng.Uint64()), 'g', -1, 64)
		case 2:
			s = fmt.Sprintf("%d.%02d", rng.Intn(100000), rng.Intn(100))
		case 3:
			s = fmt.Sprintf("%d", rng.Int63())
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(want) || math.IsInf(want, 0) {
			continue
		}
		var jsonOK float64
		if json.Unmarshal([]byte(s), &jsonOK) != nil {
			continue // not a JSON number (e.g. "+1e5" from FormatFloat 'g')
		}
		got, ok := fastFloat([]byte(s))
		if !ok || got != want {
			t.Fatalf("fastFloat(%q) = (%v, %v), want (%v, true)", s, got, ok, want)
		}
	}
}

// TestGorillaCompressionRatio pins the tentpole claim: canonical numeric
// telemetry compresses at least 5x against the raw block encoding
// (timestamp + payload text per point).
func TestGorillaCompressionRatio(t *testing.T) {
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC).UnixNano()
	pts := make([]headPoint, blockSize)
	rawBytes := 0
	v := 12.25
	for i := range pts {
		if i%5 == 0 {
			v += 0.25 // quantized sensor steps
		}
		payload := canonFloat(nil, v)
		pts[i] = headPoint{tn: base + int64(i)*50_000_000, payload: payload, val: v, numeric: true}
		rawBytes += 8 + len(payload)
	}
	enc := encodeGorilla(pts)
	ratio := float64(rawBytes) / float64(len(enc))
	t.Logf("raw %dB, gorilla %dB, ratio %.1fx (%.1f bits/point)", rawBytes, len(enc), ratio, float64(len(enc)*8)/float64(len(pts)))
	if ratio < 5 {
		t.Fatalf("compression ratio %.2fx < 5x", ratio)
	}
}
