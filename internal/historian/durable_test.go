package historian

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/smartfactory/sysml2conf/internal/wal"
)

func mustOpen(t *testing.T, dir string, opts DurableOptions) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableCrashRecovery: state built through AppendAcked and AppendBatch
// survives an abrupt close-and-reopen bit-for-bit, including session
// high-water marks.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, DurableOptions{})
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for i := 1; i <= 20; i++ {
		err := s.AppendAcked("sess", uint64(i), base.Add(time.Duration(i)*time.Second),
			[]Sample{{Series: "m/temp", Payload: []byte(fmt.Sprintf("%d", i))}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendBatch(base, []Sample{{Series: "m/raw", Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	// No graceful shutdown beyond releasing the file handle: recovery must
	// come from the WAL alone.
	s.Close()

	r := mustOpen(t, dir, DurableOptions{})
	defer r.Close()
	if got := r.Count("m/temp"); got != 20 {
		t.Errorf("recovered %d points in m/temp, want 20", got)
	}
	if got := r.Count("m/raw"); got != 1 {
		t.Errorf("recovered %d points in m/raw, want 1", got)
	}
	if got := r.SessionSeq("sess"); got != 20 {
		t.Errorf("recovered session seq %d, want 20", got)
	}
	p, err := r.Latest("m/temp")
	if err != nil || string(p.Payload) != "20" {
		t.Errorf("latest = %q, %v", p.Payload, err)
	}
}

// TestDurableSessionDedup: a redelivered batch (same or lower seq) must not
// double-append, before or after recovery.
func TestDurableSessionDedup(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, DurableOptions{})
	batch := []Sample{{Series: "x", Payload: []byte("v")}}
	now := time.Now()
	if err := s.AppendAcked("sess", 5, now, batch); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAcked("sess", 5, now, batch); err != nil { // redelivery
		t.Fatal(err)
	}
	if err := s.AppendAcked("sess", 3, now, batch); err != nil { // stale
		t.Fatal(err)
	}
	if got := s.Count("x"); got != 1 {
		t.Fatalf("dedup failed live: %d points", got)
	}
	s.Close()
	r := mustOpen(t, dir, DurableOptions{})
	defer r.Close()
	if got := r.Count("x"); got != 1 {
		t.Fatalf("dedup failed across recovery: %d points", got)
	}
	if err := r.AppendAcked("sess", 5, now, batch); err != nil {
		t.Fatal(err)
	}
	if got := r.Count("x"); got != 1 {
		t.Fatalf("recovered store re-applied seq 5: %d points", got)
	}
}

// TestCheckpointCompaction: crossing SnapshotEvery writes a snapshot,
// compacts the WAL, and recovery afterwards still yields the full state.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, DurableOptions{SnapshotEvery: 10, SegmentBytes: 512})
	for i := 1; i <= 25; i++ {
		err := s.AppendAcked("sess", uint64(i), time.Now(), []Sample{{Series: "a", Payload: []byte(fmt.Sprintf("%d", i))}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after %d appends: %v", 25, err)
	}
	// Two checkpoints (at 10 and 20) have compacted; the WAL holds ≤ 5
	// records plus the active segment.
	s.Close()
	r := mustOpen(t, dir, DurableOptions{SnapshotEvery: 10, SegmentBytes: 512})
	defer r.Close()
	if got := r.Count("a"); got != 25 {
		t.Errorf("recovered %d points, want 25", got)
	}
	if got := r.SessionSeq("sess"); got != 25 {
		t.Errorf("recovered session seq %d, want 25", got)
	}
	// LSNs are monotonic across compaction: new appends never collide with
	// snapshot coverage.
	if err := r.AppendAcked("sess", 26, time.Now(), []Sample{{Series: "a", Payload: []byte("26")}}); err != nil {
		t.Fatal(err)
	}
	if r.LastLSN() < 26 {
		t.Errorf("LastLSN %d regressed below record count", r.LastLSN())
	}
}

// TestDurableTornTail: a torn final WAL record is discarded on open; every
// fsynced-and-acked batch survives.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, DurableOptions{})
	for i := 1; i <= 5; i++ {
		if err := s.AppendAcked("sess", uint64(i), time.Now(), []Sample{{Series: "a", Payload: []byte{byte('0' + i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := filepath.Join(dir, "wal", "00000001.wal")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, DurableOptions{})
	defer r.Close()
	if got := r.Count("a"); got != 4 {
		t.Errorf("recovered %d points after torn tail, want 4 (only the torn record lost)", got)
	}
	if got := r.SessionSeq("sess"); got != 4 {
		t.Errorf("session seq %d after torn tail, want 4", got)
	}
}

// failSyncFS fails every segment fsync once armed.
type failSyncFS struct {
	wal.FS
	arm func() bool
}

type failSyncFile struct {
	wal.File
	arm func() bool
}

func (fs *failSyncFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := fs.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failSyncFile{File: f, arm: fs.arm}, nil
}

func (f *failSyncFile) Sync() error {
	if f.arm() {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// TestDurableFsyncFailureSurfaces: a failed fsync fails the append, Err()
// reports the poisoned WAL (the pod's health probe), and reopening the
// directory recovers everything previously acked.
func TestDurableFsyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	armed := false
	fs := &failSyncFS{FS: wal.OS, arm: func() bool { return armed }}
	s := mustOpen(t, dir, DurableOptions{FS: fs})
	if err := s.AppendAcked("sess", 1, time.Now(), []Sample{{Series: "a", Payload: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := s.AppendAcked("sess", 2, time.Now(), []Sample{{Series: "a", Payload: []byte("2")}}); err == nil {
		t.Fatal("append with failing fsync must error")
	}
	if s.Err() == nil {
		t.Fatal("Err() must surface the poisoned WAL")
	}
	s.Close()
	armed = false

	r := mustOpen(t, dir, DurableOptions{FS: fs})
	defer r.Close()
	// The unfsynced batch was never acked, so either outcome is safe: lost
	// (a real crash dropping the dirty page — the broker redelivers) or
	// present (the write reached the file before the failed fsync — the
	// session dedup absorbs the redelivery). What must hold: the fsynced
	// batch survives and the reopened store accepts appends again.
	if got := r.SessionSeq("sess"); got < 1 {
		t.Errorf("recovered session seq %d, want >= 1 (the fsynced batch)", got)
	}
	if err := r.AppendAcked("sess", 3, time.Now(), []Sample{{Series: "a", Payload: []byte("3")}}); err != nil {
		t.Fatalf("reopened store must accept appends: %v", err)
	}
}

// TestSnapshotFutureVersionRejected covers the versioning satellite: a
// snapshot from a newer build fails with a clear error instead of being
// silently misread, and the durable Open path propagates it.
func TestSnapshotFutureVersionRejected(t *testing.T) {
	future := fmt.Sprintf(`{"version": %d, "series": {}}`, snapshotVersion+1)
	_, err := RestoreStore(strings.NewReader(future))
	if err == nil {
		t.Fatal("future snapshot version must be rejected")
	}
	if !strings.Contains(err.Error(), "newer version") {
		t.Fatalf("error %q does not explain the version skew", err)
	}
	if _, err := RestoreStore(strings.NewReader(`{"version": 0, "series": {}}`)); err == nil {
		t.Fatal("version 0 must be rejected")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DurableOptions{}); err == nil || !strings.Contains(err.Error(), "newer version") {
		t.Fatalf("Open on a future snapshot = %v, want newer-version error", err)
	}
}

// TestSnapshotV1Compat: a version-1 snapshot (pre-sessions format) still
// restores.
func TestSnapshotV1Compat(t *testing.T) {
	v1 := `{"version":1,"maxPerSeries":100,"series":{"a":[{"time":"2026-08-06T00:00:00Z","payload":"MQ=="}]}}`
	s, err := RestoreStore(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Count("a"); got != 1 {
		t.Errorf("v1 restore: %d points, want 1", got)
	}
	if got := s.SessionSeq("any"); got != 0 {
		t.Errorf("v1 restore invented session state: %d", got)
	}
}
