package historian

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
)

var t0 = time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

func TestAppendAndRange(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		s.Append("m/x", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d", i)))
	}
	if s.Count("m/x") != 10 {
		t.Fatalf("count = %d", s.Count("m/x"))
	}
	pts := s.Range("m/x", t0.Add(2*time.Second), t0.Add(5*time.Second))
	if len(pts) != 3 {
		t.Fatalf("range len = %d, want 3", len(pts))
	}
	if string(pts[0].Payload) != "2" || string(pts[2].Payload) != "4" {
		t.Errorf("range = %v..%v", string(pts[0].Payload), string(pts[2].Payload))
	}
}

func TestLatest(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Latest("none"); err == nil {
		t.Error("want error for empty series")
	}
	s.Append("a", t0, []byte("1"))
	s.Append("a", t0.Add(time.Second), []byte("2"))
	p, err := s.Latest("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "2" {
		t.Errorf("latest = %s", p.Payload)
	}
}

func TestOutOfOrderInsert(t *testing.T) {
	s := NewStore(0)
	s.Append("a", t0.Add(2*time.Second), []byte("2"))
	s.Append("a", t0, []byte("0"))
	s.Append("a", t0.Add(time.Second), []byte("1"))
	pts := s.Range("a", t0, t0.Add(3*time.Second))
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	for i, want := range []string{"0", "1", "2"} {
		if string(pts[i].Payload) != want {
			t.Errorf("pts[%d] = %s, want %s", i, pts[i].Payload, want)
		}
	}
}

func TestRetentionBound(t *testing.T) {
	s := NewStore(5)
	for i := 0; i < 20; i++ {
		s.Append("a", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d", i)))
	}
	if s.Count("a") != 5 {
		t.Fatalf("count = %d, want 5 (retention)", s.Count("a"))
	}
	p, _ := s.Latest("a")
	if string(p.Payload) != "19" {
		t.Errorf("latest after retention = %s", p.Payload)
	}
	if s.TotalAppended() != 20 {
		t.Errorf("total appended = %d", s.TotalAppended())
	}
}

func TestAggregateRange(t *testing.T) {
	s := NewStore(0)
	for i := 1; i <= 4; i++ {
		s.Append("a", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d.0", i)))
	}
	agg, err := s.AggregateRange("a", t0, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 4 || agg.Min != 1 || agg.Max != 4 || agg.Mean != 2.5 {
		t.Errorf("agg = %+v", agg)
	}
	if _, err := s.AggregateRange("a", t0.Add(time.Hour), t0.Add(2*time.Hour)); err != ErrNoNumericData {
		t.Errorf("err = %v, want ErrNoNumericData", err)
	}
}

func TestPointFloatFromObject(t *testing.T) {
	p := Point{Payload: []byte(`{"value": 3.5, "type": "Double"}`)}
	f, ok := p.Float()
	if !ok || f != 3.5 {
		t.Errorf("Float = %v, %v", f, ok)
	}
	p = Point{Payload: []byte(`{"value": "7.25"}`)}
	f, ok = p.Float()
	if !ok || f != 7.25 {
		t.Errorf("Float from string = %v, %v", f, ok)
	}
	p = Point{Payload: []byte(`"not numeric"`)}
	if _, ok := p.Float(); ok {
		t.Error("non-numeric payload should not parse")
	}
}

func TestRangeOrderedProperty(t *testing.T) {
	f := func(offsets []int8) bool {
		s := NewStore(0)
		for _, off := range offsets {
			s.Append("a", t0.Add(time.Duration(off)*time.Second), []byte("0"))
		}
		pts := s.Range("a", t0.Add(-200*time.Second), t0.Add(200*time.Second))
		if len(pts) != len(offsets) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Time.Before(pts[i-1].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestServiceIngestsFromBroker(t *testing.T) {
	b := broker.New()
	if err := b.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	svc, err := NewService(b.Addr(), []string{"factory/#"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	pub, err := broker.DialClient(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 5; i++ {
		if err := pub.Publish("factory/wc02/emco/actualX", []byte(fmt.Sprintf("%d.5", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Store.Count("factory/wc02/emco/actualX") == 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Store.Count("factory/wc02/emco/actualX"); got != 5 {
		t.Fatalf("stored %d points, want 5", got)
	}
	agg, err := svc.Store.AggregateRange("factory/wc02/emco/actualX", t0.Add(-100*time.Hour), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 5 || agg.Min != 0.5 || agg.Max != 4.5 {
		t.Errorf("agg = %+v", agg)
	}
}

func TestServiceBadSubscription(t *testing.T) {
	b := broker.New()
	if err := b.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := NewService(b.Addr(), []string{"bad/#/filter"}, 0); err == nil {
		t.Error("want error for invalid filter")
	}
}
