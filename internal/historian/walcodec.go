package historian

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// unixNano reconstructs an instant from stored nanoseconds. Decoded times
// are canonically UTC — binary encodings (blocks, WAL records) store the
// instant only, not the wall-clock location.
func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// Binary WAL record format. The legacy format JSON-encoded every batch
// (~1.1KB/record once base64 payloads and field names added up); this
// codec packs the same walRecord into a version-tagged binary layout with
// a per-record series dictionary and float payload packing:
//
//	0x01                          version tag (legacy JSON starts with '{')
//	uvarint                       zigzag(batch time, unix nanos)
//	uvarint + bytes               session name
//	uvarint                       session seq
//	uvarint                       dictionary size, then per entry:
//	  uvarint + bytes               series name (first-seen order)
//	uvarint                       sample count, then per sample:
//	  uvarint                       dictionary index
//	  0x00 uvarint + bytes          raw payload, or
//	  0x01 8-byte LE float          canonical numeric payload
//
// A numeric payload is packed as its float64 only when the payload is the
// canonical text of that value (canonFloat), so decode regenerates the
// exact bytes. Records stay self-contained — no cross-record deltas —
// because checkpoints truncate the log at arbitrary record boundaries.

const walBinaryVersion = 0x01

const (
	walPayloadRaw   = 0x00
	walPayloadFloat = 0x01
)

// appendWALRecord encodes rec into dst (reusing its capacity).
func appendWALRecord(dst []byte, t int64, session string, seq uint64, samples []Sample) []byte {
	dst = append(dst, walBinaryVersion)
	dst = binary.AppendUvarint(dst, zigzag(t))
	dst = binary.AppendUvarint(dst, uint64(len(session)))
	dst = append(dst, session...)
	dst = binary.AppendUvarint(dst, seq)

	// Series dictionary in first-seen order. Batches carry few distinct
	// series (often one), so a linear scan beats a map allocation.
	var dictArr [16]string
	dict := dictArr[:0]
	for i := range samples {
		name := samples[i].Series
		found := false
		for _, d := range dict {
			if d == name {
				found = true
				break
			}
		}
		if !found {
			dict = append(dict, name)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, d := range dict {
		dst = binary.AppendUvarint(dst, uint64(len(d)))
		dst = append(dst, d...)
	}

	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	var fbuf [8]byte
	for i := range samples {
		sm := &samples[i]
		di := 0
		for j, d := range dict {
			if d == sm.Series {
				di = j
				break
			}
		}
		dst = binary.AppendUvarint(dst, uint64(di))
		if v, ok := fastFloat(sm.Payload); ok && canonicalPayload(sm.Payload, v) {
			dst = append(dst, walPayloadFloat)
			binary.LittleEndian.PutUint64(fbuf[:], math.Float64bits(v))
			dst = append(dst, fbuf[:]...)
		} else {
			dst = append(dst, walPayloadRaw)
			dst = binary.AppendUvarint(dst, uint64(len(sm.Payload)))
			dst = append(dst, sm.Payload...)
		}
	}
	return dst
}

// decodeWALRecord parses a binary record (first byte walBinaryVersion).
func decodeWALRecord(p []byte) (walRecord, error) {
	var rec walRecord
	r := walReader{buf: p, off: 1}
	tz := r.uvarint()
	rec.T = unixNano(unzigzag(tz))
	rec.Session = string(r.bytes(int(r.uvarint())))
	rec.Seq = r.uvarint()

	nd := r.uvarint()
	if r.err == nil && nd > uint64(len(p)) {
		return rec, fmt.Errorf("historian: wal record: dictionary size %d exceeds record", nd)
	}
	dict := make([]string, 0, nd)
	for i := uint64(0); i < nd && r.err == nil; i++ {
		dict = append(dict, string(r.bytes(int(r.uvarint()))))
	}

	ns := r.uvarint()
	if r.err == nil && ns > uint64(len(p)) {
		return rec, fmt.Errorf("historian: wal record: sample count %d exceeds record", ns)
	}
	rec.Samples = make([]walSample, 0, ns)
	for i := uint64(0); i < ns && r.err == nil; i++ {
		di := r.uvarint()
		if r.err == nil && di >= uint64(len(dict)) {
			return rec, fmt.Errorf("historian: wal record: dictionary index %d out of range", di)
		}
		tag := r.byte()
		var payload []byte
		switch tag {
		case walPayloadRaw:
			payload = append([]byte(nil), r.bytes(int(r.uvarint()))...)
		case walPayloadFloat:
			b := r.bytes(8)
			if r.err == nil {
				payload = canonFloat(nil, math.Float64frombits(binary.LittleEndian.Uint64(b)))
			}
		default:
			if r.err == nil {
				return rec, fmt.Errorf("historian: wal record: unknown payload tag 0x%02x", tag)
			}
		}
		if r.err == nil {
			rec.Samples = append(rec.Samples, walSample{Series: dict[di], Payload: payload})
		}
	}
	if r.err != nil {
		return rec, fmt.Errorf("historian: wal record: %w", r.err)
	}
	return rec, nil
}

// walReader is a cursor with sticky error handling over a record buffer.
type walReader struct {
	buf []byte
	off int
	err error
}

var errWALTruncated = fmt.Errorf("truncated record")

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errWALTruncated
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = errWALTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *walReader) byte() byte {
	b := r.bytes(1)
	if r.err != nil {
		return 0xFF
	}
	return b[0]
}
