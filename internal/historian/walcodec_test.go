package historian

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/smartfactory/sysml2conf/internal/wal"
)

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		session string
		seq     uint64
		samples []Sample
	}{
		{"numeric batch", "historian/h/topic", 42, []Sample{
			{Series: "cell/m1/x", Payload: []byte("12.25")},
			{Series: "cell/m1/x", Payload: []byte("12.5")},
			{Series: "cell/m2/x", Payload: []byte("0")},
		}},
		{"raw batch", "", 0, []Sample{
			{Series: "cell/m1/state", Payload: []byte(`{"state":"RUNNING"}`)},
			{Series: "cell/m1/x", Payload: []byte("not numeric")},
			{Series: "cell/m1/x", Payload: []byte{}},
		}},
		{"mixed non-canonical numerics", "s", 7, []Sample{
			{Series: "a", Payload: []byte("1e3")},    // valid JSON, not canonical
			{Series: "a", Payload: []byte("12.250")}, // trailing zero
			{Series: "a", Payload: []byte("1e-7")},   // canonical exponent form
			{Series: "a", Payload: []byte("-0.5")},
		}},
	}
	ts := time.Date(2026, 8, 9, 12, 0, 0, 123456789, time.UTC)
	for _, c := range cases {
		enc := appendWALRecord(nil, ts.UnixNano(), c.session, c.seq, c.samples)
		if enc[0] != walBinaryVersion {
			t.Fatalf("%s: first byte 0x%02x, want version tag", c.name, enc[0])
		}
		rec, err := decodeAnyWALRecord(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !rec.T.Equal(ts) || rec.Session != c.session || rec.Seq != c.seq {
			t.Fatalf("%s: header (%v, %q, %d), want (%v, %q, %d)", c.name, rec.T, rec.Session, rec.Seq, ts, c.session, c.seq)
		}
		if len(rec.Samples) != len(c.samples) {
			t.Fatalf("%s: %d samples, want %d", c.name, len(rec.Samples), len(c.samples))
		}
		for i, sm := range rec.Samples {
			if sm.Series != c.samples[i].Series || !bytes.Equal(sm.Payload, c.samples[i].Payload) {
				t.Fatalf("%s sample %d: (%q, %q), want (%q, %q)", c.name, i, sm.Series, sm.Payload, c.samples[i].Series, c.samples[i].Payload)
			}
		}
	}
}

func TestWALRecordTruncatedAndCorrupt(t *testing.T) {
	enc := appendWALRecord(nil, time.Now().UnixNano(), "s", 9, []Sample{
		{Series: "a", Payload: []byte("12.25")},
		{Series: "b", Payload: []byte("raw bytes")},
	})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodeAnyWALRecord(enc[:cut]); err == nil {
			t.Fatalf("cut at %d/%d decoded without error", cut, len(enc))
		}
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)-10] ^= 0xFF // flip inside the payload area
	// Corruption may still parse (payload bytes are opaque) but must not panic.
	decodeAnyWALRecord(bad)
}

// TestWALBinarySmallerThanJSON pins the compression claim at the record
// level for numeric telemetry.
func TestWALBinarySmallerThanJSON(t *testing.T) {
	ts := time.Now()
	samples := make([]Sample, 16)
	for i := range samples {
		samples[i] = Sample{Series: "factory/cell-1/m1/actualX", Payload: []byte(fmt.Sprintf("%d.25", i))}
	}
	bin := appendWALRecord(nil, ts.UnixNano(), "historian/h/factory/#", 99, samples)
	rec := walRecord{T: ts, Session: "historian/h/factory/#", Seq: 99, Samples: make([]walSample, len(samples))}
	for i, sm := range samples {
		rec.Samples[i] = walSample{Series: sm.Series, Payload: sm.Payload}
	}
	js, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("binary %dB vs JSON %dB (%.1fx) for a 16-sample numeric batch", len(bin), len(js), float64(len(js))/float64(len(bin)))
	if len(bin)*2 > len(js) {
		t.Fatalf("binary record %dB is not at least 2x smaller than JSON %dB", len(bin), len(js))
	}
}

// TestLegacyJSONWALReplays proves logs written before the binary codec
// still recover: records are hand-written in the old JSON format.
func TestLegacyJSONWALReplays(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{}, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		rec := walRecord{T: ts.Add(time.Duration(i) * time.Second), Session: "s", Seq: uint64(i + 1),
			Samples: []walSample{{Series: "m", Payload: []byte(fmt.Sprintf("%d.5", i))}}}
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("open over legacy JSON log: %v", err)
	}
	defer st.Close()
	if got := st.Count("m"); got != 10 {
		t.Fatalf("replayed %d points from JSON records, want 10", got)
	}
	if got := st.SessionSeq("s"); got != 10 {
		t.Fatalf("session seq %d, want 10", got)
	}
	// New appends to the recovered store write binary records alongside.
	if err := st.AppendAcked("s", 11, ts.Add(time.Minute), []Sample{{Series: "m", Payload: []byte("99.5")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen over mixed JSON+binary log: %v", err)
	}
	defer st2.Close()
	if got := st2.Count("m"); got != 11 {
		t.Fatalf("mixed-format replay got %d points, want 11", got)
	}
}

// TestCompressedWALRecoveryEquivalence is the satellite proof: a store
// recovered from the binary WAL is indistinguishable from one that never
// crashed, across numeric (compressed), object and non-numeric payloads,
// sealed blocks and session state.
func TestCompressedWALRecoveryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	st, err := Open(dir, DurableOptions{SnapshotEvery: 1 << 30}) // everything replays from the WAL
	if err != nil {
		t.Fatal(err)
	}
	live := NewStore(0) // the never-crashed reference
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var seq uint64
	for i := 0; i < 3*blockSize; {
		n := 1 + rng.Intn(8)
		batch := make([]Sample, 0, n)
		ts := base.Add(time.Duration(i) * 20 * time.Millisecond)
		for j := 0; j < n; j++ {
			var payload string
			switch rng.Intn(3) {
			case 0:
				payload = fmt.Sprintf("%d.25", i+j)
			case 1:
				payload = fmt.Sprintf(`{"machine":"m","value":%d}`, i+j)
			case 2:
				payload = fmt.Sprintf("state-%d", i+j)
			}
			batch = append(batch, Sample{Series: fmt.Sprintf("cell/m%d/x", (i+j)%3), Payload: []byte(payload)})
		}
		i += n
		seq++
		if err := st.AppendAcked("sess", seq, ts, batch); err != nil {
			t.Fatal(err)
		}
		if err := live.AppendAcked("sess", seq, ts, batch); err != nil {
			t.Fatal(err)
		}
	}
	st.Close() // crash point: recovery is WAL-only

	rec, err := Open(dir, DurableOptions{SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got, want := rec.TotalAppended(), live.TotalAppended(); got != want {
		t.Fatalf("recovered %d points, want %d", got, want)
	}
	if got, want := rec.SessionSeq("sess"), live.SessionSeq("sess"); got != want {
		t.Fatalf("recovered session seq %d, want %d", got, want)
	}
	for _, series := range live.Series() {
		a := rec.Range(series, time.Time{}, base.Add(time.Hour))
		b := live.Range(series, time.Time{}, base.Add(time.Hour))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("series %s: recovered range differs (%d vs %d points)", series, len(a), len(b))
		}
		aggA, errA := rec.AggregateRange(series, base, base.Add(time.Hour))
		aggB, errB := live.AggregateRange(series, base, base.Add(time.Hour))
		if (errA == nil) != (errB == nil) || aggA != aggB {
			t.Fatalf("series %s: recovered aggregate %+v/%v, want %+v/%v", series, aggA, errA, aggB, errB)
		}
	}
}
