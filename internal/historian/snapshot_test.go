package historian

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore(100)
	for i := 0; i < 10; i++ {
		s.Append("a/x", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d", i)))
	}
	s.Append("b/y", t0, []byte(`{"value": 1.5}`))

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Series(), s.Series()) {
		t.Errorf("series = %v vs %v", restored.Series(), s.Series())
	}
	for _, name := range s.Series() {
		if restored.Count(name) != s.Count(name) {
			t.Errorf("%s count = %d vs %d", name, restored.Count(name), s.Count(name))
		}
	}
	p, err := restored.Latest("a/x")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "9" {
		t.Errorf("latest = %s", p.Payload)
	}
	agg, err := restored.AggregateRange("a/x", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 10 || agg.Mean != 4.5 {
		t.Errorf("agg = %+v", agg)
	}
}

func TestSnapshotPreservesRetention(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 10; i++ {
		s.Append("a", t0.Add(time.Duration(i)*time.Second), []byte("x"))
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count("a") != 3 {
		t.Errorf("count = %d", restored.Count("a"))
	}
	// Retention still enforced after restore.
	for i := 10; i < 20; i++ {
		restored.Append("a", t0.Add(time.Duration(i)*time.Second), []byte("y"))
	}
	if restored.Count("a") != 3 {
		t.Errorf("post-restore count = %d", restored.Count("a"))
	}
}

// TestSnapshotPreservesRollupsPastRetention pins the aggregates-outlive-
// retention contract across checkpoint/recovery: rollup buckets counting
// points already dropped by retention must restore intact, so windowed
// aggregates answer identically before and after a restart.
func TestSnapshotPreservesRollupsPastRetention(t *testing.T) {
	s := NewStore(5) // tight retention: most raw points age out
	for i := 0; i < 50; i++ {
		s.Append("a", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d", i)))
	}
	from, to := t0, t0.Add(time.Hour)
	before, err := s.AggregateRange("a", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if before.Count != 50 {
		t.Fatalf("pre-snapshot aggregate count = %d, want 50 (rollups must outlive retention)", before.Count)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.AggregateRange("a", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("aggregate changed across restore: %+v, want %+v", after, before)
	}
	if restored.Count("a") != 5 {
		t.Fatalf("restored raw count = %d, want 5", restored.Count("a"))
	}

	// The restored rings keep accepting newer appends.
	restored.Append("a", t0.Add(50*time.Second), []byte("50"))
	grown, err := restored.AggregateRange("a", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Count != 51 || grown.Max != 50 {
		t.Fatalf("post-restore append: %+v, want count 51 max 50", grown)
	}
}

// TestRestoreLegacySnapshotWithoutRollups checks that a version-2 snapshot
// (no Rollups field) still restores, with aggregates rebuilt from the
// retained points only.
func TestRestoreLegacySnapshotWithoutRollups(t *testing.T) {
	s := NewStore(5)
	for i := 0; i < 50; i++ {
		s.Append("a", t0.Add(time.Duration(i)*time.Second), []byte(fmt.Sprintf("%d", i)))
	}
	snap := s.Snapshot()
	snap.Version = 2
	snap.Rollups = nil
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := restored.AggregateRange("a", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 5 || agg.Max != 49 || agg.Min != 45 {
		t.Fatalf("legacy restore aggregate = %+v, want the 5 retained points [45,49]", agg)
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	if _, err := RestoreStore(strings.NewReader("{not json")); err == nil {
		t.Error("want decode error")
	}
	if _, err := RestoreStore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("want version error")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewStore(0)
	s.Append("a", t0, []byte("1"))
	snap := s.Snapshot()
	// Mutating the store after the snapshot must not affect it.
	s.Append("a", t0.Add(time.Second), []byte("2"))
	if len(snap.Series["a"]) != 1 {
		t.Errorf("snapshot mutated: %d points", len(snap.Series["a"]))
	}
}

// TestSnapshotUnderConcurrentWrites hammers a store with concurrent
// appenders while snapshots stream out, then checks that a final quiesced
// snapshot restores to the exact same contents. Run with -race: this is the
// guard against snapshot/append data races.
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	store := NewStore(0)
	const (
		writers   = 8
		perWriter = 400
	)
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := store.Snapshot()
				// Every concurrently-taken snapshot must itself be
				// internally consistent: series sorted by time.
				for name, pts := range snap.Series {
					for j := 1; j < len(pts); j++ {
						if pts[j].Time.Before(pts[j-1].Time) {
							t.Errorf("snapshot series %s out of order", name)
							return
						}
					}
				}
				if err := store.WriteSnapshot(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var writeWG sync.WaitGroup
	base := time.Now()
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			series := fmt.Sprintf("series-%d", w%4) // overlap across writers
			for i := 0; i < perWriter; i++ {
				store.Append(series, base.Add(time.Duration(w*perWriter+i)*time.Millisecond),
					[]byte(fmt.Sprintf("%d", i)))
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	snapWG.Wait()

	if got, want := store.TotalAppended(), uint64(writers*perWriter); got != want {
		t.Fatalf("TotalAppended = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range store.Series() {
		if restored.Count(name) != store.Count(name) {
			t.Errorf("series %s: restored %d points, want %d", name, restored.Count(name), store.Count(name))
		}
	}
}
