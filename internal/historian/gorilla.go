package historian

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/bits"
	"strconv"
)

// Gorilla-style time-series compression (Facebook's "Gorilla: A Fast,
// Scalable, In-Memory Time Series Database", VLDB'15): timestamps as
// delta-of-delta with bucketed variable-length codes, values as XOR against
// the previous float with a reusable leading/trailing-zero window. Sealed
// historian blocks and binary WAL records use this for numeric telemetry;
// anything that is not the canonical text of a float64 stays on the raw
// path (block.go).
//
// Stream layout of one encoded block:
//
//	uvarint  point count
//	varint   first timestamp (unix nanos)
//	bits     first value (64 raw bits), then per point:
//	           dod:   '0' | '10'+16-bit zigzag | '110'+32 | '111'+64
//	           value: '0' same | '10' reuse window | '11'+5-bit leading
//	                  +6-bit (sigbits-1) + sigbits of XOR

// ---------------------------------------------------------------------------
// Bit stream

// bitWriter appends MSB-first bits to a byte slice.
type bitWriter struct {
	buf  []byte
	free uint // unwritten bits in the last byte
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	if n < 64 {
		v &= 1<<n - 1
	}
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := w.free
		if n < take {
			take = n
		}
		n -= take
		w.buf[len(w.buf)-1] |= byte(v>>n&(1<<take-1)) << (w.free - take)
		w.free -= take
	}
}

// bitReader consumes MSB-first bits from a byte slice.
type bitReader struct {
	buf []byte
	off int  // current byte
	bit uint // bits already consumed in buf[off]
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	var v uint64
	for n > 0 {
		if r.off >= len(r.buf) {
			return 0, false
		}
		avail := 8 - r.bit
		take := avail
		if n < take {
			take = n
		}
		v = v<<take | uint64(r.buf[r.off]>>(avail-take)&(1<<take-1))
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.off++
		}
		n -= take
	}
	return v, true
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ---------------------------------------------------------------------------
// Encoder

// encodeGorilla compresses timestamps and numeric values of pts. Every
// point must be numeric; payloads are not stored — decode regenerates the
// canonical float text, which is why only canonical payloads may take this
// path (see encodeBlock).
func encodeGorilla(pts []headPoint) []byte {
	buf := make([]byte, 0, 16+len(pts))
	buf = binary.AppendUvarint(buf, uint64(len(pts)))
	buf = binary.AppendVarint(buf, pts[0].tn)
	w := bitWriter{buf: buf}
	w.writeBits(math.Float64bits(pts[0].val), 64)

	prevT := pts[0].tn
	prevDelta := int64(0)
	prevV := math.Float64bits(pts[0].val)
	lead, trail, sig := 0, 0, 0 // current reuse window; sig==0 means unset

	for i := 1; i < len(pts); i++ {
		p := &pts[i]
		delta := p.tn - prevT
		dod := delta - prevDelta
		prevT, prevDelta = p.tn, delta
		switch zz := zigzag(dod); {
		case dod == 0:
			w.writeBits(0, 1)
		case zz < 1<<16:
			w.writeBits(0b10, 2)
			w.writeBits(zz, 16)
		case zz < 1<<32:
			w.writeBits(0b110, 3)
			w.writeBits(zz, 32)
		default:
			w.writeBits(0b111, 3)
			w.writeBits(zz, 64)
		}

		cur := math.Float64bits(p.val)
		xor := cur ^ prevV
		prevV = cur
		if xor == 0 {
			w.writeBits(0, 1)
			continue
		}
		l := bits.LeadingZeros64(xor)
		if l > 31 {
			l = 31 // 5-bit field
		}
		t := bits.TrailingZeros64(xor)
		if sig > 0 && l >= lead && t >= trail {
			w.writeBits(0b10, 2)
			w.writeBits(xor>>uint(trail), uint(sig))
		} else {
			lead, trail = l, t
			sig = 64 - l - t
			w.writeBits(0b11, 2)
			w.writeBits(uint64(l), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>uint(t), uint(sig))
		}
	}
	return w.buf
}

// ---------------------------------------------------------------------------
// Decoder

// gorillaIter streams (timestamp, value) pairs out of an encoded block.
type gorillaIter struct {
	r     bitReader
	count int
	i     int
	t     int64
	delta int64
	v     uint64
	lead  int
	trail int
	sig   int
	bad   bool
}

func newGorillaIter(enc []byte) gorillaIter {
	n, sz1 := binary.Uvarint(enc)
	if sz1 <= 0 {
		return gorillaIter{bad: true}
	}
	t0, sz2 := binary.Varint(enc[sz1:])
	if sz2 <= 0 {
		return gorillaIter{bad: true}
	}
	return gorillaIter{r: bitReader{buf: enc[sz1+sz2:]}, count: int(n), t: t0}
}

// next advances to the next point; it.t and it.value() hold the result.
func (it *gorillaIter) next() bool {
	if it.bad || it.i >= it.count {
		return false
	}
	if it.i == 0 {
		v, ok := it.r.readBits(64)
		if !ok {
			it.bad = true
			return false
		}
		it.v = v
		it.i++
		return true
	}
	b, ok := it.r.readBits(1)
	if !ok {
		it.bad = true
		return false
	}
	if b == 1 {
		var width uint
		if b, ok = it.r.readBits(1); !ok {
			it.bad = true
			return false
		}
		if b == 0 {
			width = 16
		} else if b, ok = it.r.readBits(1); !ok {
			it.bad = true
			return false
		} else if b == 0 {
			width = 32
		} else {
			width = 64
		}
		zz, ok := it.r.readBits(width)
		if !ok {
			it.bad = true
			return false
		}
		it.delta += unzigzag(zz)
	}
	it.t += it.delta

	b, ok = it.r.readBits(1)
	if !ok {
		it.bad = true
		return false
	}
	if b == 1 {
		if b, ok = it.r.readBits(1); !ok {
			it.bad = true
			return false
		}
		if b == 1 {
			l, ok1 := it.r.readBits(5)
			s, ok2 := it.r.readBits(6)
			if !ok1 || !ok2 {
				it.bad = true
				return false
			}
			it.lead = int(l)
			it.sig = int(s) + 1
			it.trail = 64 - it.lead - it.sig
		}
		if it.sig <= 0 || it.trail < 0 {
			it.bad = true
			return false
		}
		x, ok := it.r.readBits(uint(it.sig))
		if !ok {
			it.bad = true
			return false
		}
		it.v ^= x << uint(it.trail)
	}
	it.i++
	return true
}

func (it *gorillaIter) value() float64 { return math.Float64frombits(it.v) }

// ---------------------------------------------------------------------------
// Canonical float text

// canonFloat appends the canonical text of v: the shortest round-trip
// decimal in the format encoding/json uses ('f' for ordinary magnitudes,
// exponent form outside [1e-6, 1e21)). A payload equal to canonFloat of its
// parsed value can be discarded at seal time and regenerated byte-exactly
// on read.
func canonFloat(dst []byte, v float64) []byte {
	f := byte('f')
	if abs := math.Abs(v); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		f = 'e'
	}
	dst = strconv.AppendFloat(dst, v, f, -1, 64)
	if f == 'e' {
		// encoding/json trims a leading zero off small negative exponents
		// ("1e-07" -> "1e-7"); match it byte for byte.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// canonicalPayload reports whether payload is exactly canonFloat(v).
func canonicalPayload(payload []byte, v float64) bool {
	var buf [32]byte
	return bytes.Equal(payload, canonFloat(buf[:0], v))
}

// ---------------------------------------------------------------------------
// Fast numeric payload parse

// pow10tab holds exact powers of ten for the fast decimal path.
var pow10tab = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

var valueKey = []byte(`"value"`)

// fastFloat is the ingest-path equivalent of Point.Float: it interprets the
// payload as a raw JSON number or an object with a numeric (or
// quoted-numeric) "value" field, without allocating on the common shapes.
// NaN and Inf cannot be produced (JSON has no literal for them and
// out-of-range exponents fail the parse), so rollups and compressed blocks
// only ever see finite values. It is marginally more lenient than
// encoding/json on malformed exponent forms; such payloads are never
// canonical, so they cannot reach the compressed path.
func fastFloat(p []byte) (float64, bool) {
	i, end := 0, len(p)
	for i < end && asciiSpace(p[i]) {
		i++
	}
	for end > i && asciiSpace(p[end-1]) {
		end--
	}
	if i >= end {
		return 0, false
	}
	switch c := p[i]; {
	case c == '-' || (c >= '0' && c <= '9'):
		return parseJSONNumber(p[i:end])
	case c == '{':
		return objectValue(p[i:end])
	}
	return 0, false
}

func asciiSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// parseJSONNumber parses a JSON number. Mantissas of up to 15 digits with
// no exponent take an exact integer/power-of-ten path (both the mantissa
// and 10^k are exactly representable, so the single division rounds once —
// the same result strconv.ParseFloat produces); everything else falls back
// to strconv.
func parseJSONNumber(b []byte) (float64, bool) {
	i := 0
	neg := false
	if b[0] == '-' {
		neg = true
		i++
		if i == len(b) {
			return 0, false
		}
	}
	if b[i] == '0' && i+1 < len(b) && b[i+1] >= '0' && b[i+1] <= '9' {
		return 0, false // JSON forbids leading zeros
	}
	var mant uint64
	nd := 0
	frac := -1
	for ; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			nd++
			if frac >= 0 {
				frac++
			}
		case c == '.' && frac < 0 && nd > 0:
			frac = 0
		case c == 'e' || c == 'E':
			if nd == 0 || frac == 0 {
				return 0, false
			}
			return parseFloatSlow(b)
		default:
			return 0, false
		}
	}
	if nd == 0 || frac == 0 {
		return 0, false // "", "-", "5."
	}
	if nd > 15 {
		return parseFloatSlow(b)
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10tab[frac]
	}
	if neg {
		f = -f
	}
	return f, true
}

func parseFloatSlow(b []byte) (float64, bool) {
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

// objectValue extracts a numeric "value" field from a JSON object by
// scanning the byte structure — the shapes the stack's bridge and monitor
// publish ({"machine":...,"variable":...,"value":12.25}) resolve without a
// json.Unmarshal. The scan tracks brace/bracket depth and string spans, so
// only a top-level "value" key matches: nested objects ({"a":{"value":5}})
// and the key text embedded inside another string stay non-numeric, keeping
// this a strict subset of the full-parse fallback in Point.Float.
func objectValue(p []byte) (float64, bool) {
	depth := 0
	for i := 0; i < len(p); {
		switch c := p[i]; c {
		case '{', '[':
			depth++
			i++
		case '}', ']':
			depth--
			i++
		case '"':
			j := i + 1
			escaped := false
			for j < len(p) && p[j] != '"' {
				if p[j] == '\\' {
					escaped = true
					j++ // skip the escaped byte; \" stays inside the string
				}
				j++
			}
			if j >= len(p) {
				return 0, false // unterminated string: malformed payload
			}
			if depth == 1 && !escaped && bytes.Equal(p[i:j+1], valueKey) {
				k := j + 1
				for k < len(p) && asciiSpace(p[k]) {
					k++
				}
				if k < len(p) && p[k] == ':' {
					return keyedValue(p, k+1)
				}
			}
			i = j + 1
		default:
			i++
		}
	}
	return 0, false
}

// keyedValue parses the value that follows a matched `"value":` key at
// offset i — a JSON number, or a quoted numeric string.
func keyedValue(p []byte, i int) (float64, bool) {
	for i < len(p) && asciiSpace(p[i]) {
		i++
	}
	if i >= len(p) {
		return 0, false
	}
	switch c := p[i]; {
	case c == '"':
		j := i + 1
		for j < len(p) && p[j] != '"' && p[j] != '\\' {
			j++
		}
		if j >= len(p) || p[j] != '"' {
			return 0, false // escapes or truncation: not a plain quoted number
		}
		f, err := strconv.ParseFloat(string(p[i+1:j]), 64)
		if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
			return 0, false
		}
		return f, true
	case c == '-' || (c >= '0' && c <= '9'):
		j := i
		for j < len(p) && numChar(p[j]) {
			j++
		}
		return parseJSONNumber(p[i:j])
	}
	return 0, false
}

func numChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

// floorDiv and ceilDiv are floored/ceiled integer division — bucket-index
// math that must stay correct for pre-1970 (negative-nano) timestamps like
// the zero time.Time callers pass as an open lower bound.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 { return -floorDiv(-a, b) }
