package historian

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// bruteAggregate recomputes an aggregate by scanning Range output with
// Point.Float — the reference the rollup cascade must match (modulo NaN,
// which the ingest path excludes by design).
func bruteAggregate(st *Store, series string, from, to time.Time) (Aggregate, bool) {
	agg := Aggregate{}
	sum := 0.0
	for _, p := range st.Range(series, from, to) {
		f, ok := p.Float()
		if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if agg.Count == 0 {
			agg.Min, agg.Max = f, f
		} else {
			if f < agg.Min {
				agg.Min = f
			}
			if f > agg.Max {
				agg.Max = f
			}
		}
		agg.Count++
		sum += f
	}
	if agg.Count == 0 {
		return agg, false
	}
	agg.Mean = sum / float64(agg.Count)
	return agg, true
}

func checkAggEquiv(t *testing.T, st *Store, series string, from, to time.Time) {
	t.Helper()
	want, wantOK := bruteAggregate(st, series, from, to)
	got, err := st.AggregateRange(series, from, to)
	if !wantOK {
		if err == nil {
			t.Fatalf("[%v,%v): AggregateRange = %+v, want ErrNoNumericData", from, to, got)
		}
		return
	}
	if err != nil {
		t.Fatalf("[%v,%v): AggregateRange error %v, brute force found %d points", from, to, err, want.Count)
	}
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
		math.Abs(got.Mean-want.Mean) > 1e-9*math.Max(1, math.Abs(want.Mean)) {
		t.Fatalf("[%v,%v): AggregateRange = %+v, want %+v", from, to, got, want)
	}
}

// TestAggregateWindowBoundaries hits the off-by-one surfaces: [from, to)
// must include points exactly at from, exclude points exactly at to, and
// behave identically whether the bounds are window-aligned (rollup-served)
// or offset by a nanosecond (edge-scanned).
func TestAggregateWindowBoundaries(t *testing.T) {
	st := NewStore(0)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	// One point per 250ms for 5 minutes: every 1s/10s/60s bucket filled.
	for i := 0; i < 1200; i++ {
		ts := base.Add(time.Duration(i) * 250 * time.Millisecond)
		st.Append("m", ts, []byte(fmt.Sprintf("%d.25", i)))
	}
	cases := []struct{ from, to time.Time }{
		{base, base.Add(time.Second)},                             // aligned 1s
		{base, base.Add(time.Minute)},                             // aligned 60s
		{base.Add(time.Second), base.Add(61 * time.Second)},       // aligned, offset start
		{base.Add(time.Nanosecond), base.Add(time.Minute)},        // unaligned start
		{base, base.Add(time.Minute - time.Nanosecond)},           // unaligned end
		{base.Add(250 * time.Millisecond), base.Add(time.Minute)}, // start on a point
		{base, base.Add(59*time.Second + 750*time.Millisecond)},   // end on a point: excluded
		{base.Add(17 * time.Millisecond), base.Add(293 * time.Second)},
		{base.Add(-time.Hour), base.Add(time.Hour)},    // covers everything
		{time.Time{}, base.Add(5 * time.Minute)},       // zero-time lower bound
		{base.Add(time.Hour), base.Add(2 * time.Hour)}, // beyond the data
		{base.Add(time.Minute), base.Add(time.Minute)}, // empty
	}
	for _, c := range cases {
		checkAggEquiv(t, st, "m", c.from, c.to)
	}
	// A window ending exactly on a point's timestamp excludes it; one
	// nanosecond later includes it.
	pt := base.Add(10 * time.Second)
	before, err := st.AggregateRange("m", base, pt)
	if err != nil {
		t.Fatal(err)
	}
	after, err := st.AggregateRange("m", base, pt.Add(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count+1 {
		t.Fatalf("inclusive-exclusive boundary: count %d -> %d, want +1", before.Count, after.Count)
	}
}

// TestAggregateEquivalenceRandom drives random ingest (jittered times,
// occasional out-of-order, mixed payload shapes) across enough points to
// seal compressed and raw blocks, then checks random query windows against
// the brute-force scan.
func TestAggregateEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := NewStore(0)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	cur := base
	for i := 0; i < 3000; i++ {
		cur = cur.Add(time.Duration(rng.Intn(100)) * time.Millisecond)
		ts := cur
		if rng.Intn(20) == 0 { // out of order
			ts = cur.Add(-time.Duration(rng.Intn(5000)) * time.Millisecond)
		}
		var payload string
		switch rng.Intn(4) {
		case 0:
			payload = fmt.Sprintf("%d.5", rng.Intn(1000)) // canonical: compresses
		case 1:
			payload = fmt.Sprintf(`{"machine":"m","value":%d.25}`, rng.Intn(100))
		case 2:
			payload = "not numeric"
		case 3:
			payload = fmt.Sprintf("%d", rng.Intn(1_000_000))
		}
		st.Append("m", ts, []byte(payload))
	}
	if st.Count("m") != 3000 {
		t.Fatalf("count %d, want 3000", st.Count("m"))
	}
	span := cur.Sub(base)
	for i := 0; i < 200; i++ {
		from := base.Add(time.Duration(rng.Int63n(int64(span))) - span/4)
		to := from.Add(time.Duration(rng.Int63n(int64(span))))
		checkAggEquiv(t, st, "m", from, to)
	}
}

// TestNaNAndNonFloatFallBackToRaw pins the raw-path guarantees: NaN/Inf
// texts, non-canonical numbers and non-numeric payloads are returned
// byte-exactly by Range (no compressed block may absorb them) and stay out
// of aggregates.
func TestNaNAndNonFloatFallBackToRaw(t *testing.T) {
	st := NewStore(0)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	payloads := []string{
		"NaN", "Inf", "-Inf", `{"value":"NaN"}`, "not numeric", "1e3",
		"007", "12.250", "12.25", `{"value":3.5}`, "null", "1.5",
	}
	// Enough rounds to seal multiple blocks through the mixed payloads.
	var want []string
	for i := 0; i < 2*blockSize; i++ {
		p := payloads[i%len(payloads)]
		st.Append("m", base.Add(time.Duration(i)*time.Millisecond), []byte(p))
		want = append(want, p)
	}
	got := st.Range("m", time.Time{}, base.Add(time.Hour))
	if len(got) != len(want) {
		t.Fatalf("Range returned %d points, want %d", len(got), len(want))
	}
	for i, p := range got {
		if string(p.Payload) != want[i] {
			t.Fatalf("point %d: payload %q, want %q (byte-exact through seal)", i, p.Payload, want[i])
		}
	}
	// Only the finite numerics participate in aggregation: per round that is
	// 1e3=1000, 7, 12.25 (x2 spellings... 007 and 12.250 are not valid JSON
	// numbers and stay non-numeric), 3.5, 1.5.
	agg, err := st.AggregateRange("m", time.Time{}, base.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	perRound := 5
	if wantCount := 2 * blockSize / len(payloads) * perRound; agg.Count != wantCount {
		t.Fatalf("aggregate count %d, want %d (NaN/Inf/non-JSON excluded)", agg.Count, wantCount)
	}
	if math.IsNaN(agg.Min) || math.IsNaN(agg.Max) || math.IsNaN(agg.Mean) {
		t.Fatalf("NaN leaked into aggregate: %+v", agg)
	}
}

// TestSealDuringConcurrentRead hammers Range/AggregateRange/Latest while a
// writer crosses many block-seal boundaries; run under -race this is the
// reader-vs-seal interlock proof, and the payload checks catch torn reads.
func TestSealDuringConcurrentRead(t *testing.T) {
	st := NewStore(0)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	const total = 6 * blockSize
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pts := st.Range("m", base, base.Add(time.Hour))
				for i := 1; i < len(pts); i++ {
					if pts[i].Time.Before(pts[i-1].Time) {
						t.Errorf("Range out of order at %d", i)
						return
					}
				}
				for _, p := range pts {
					if _, ok := p.Float(); !ok {
						t.Errorf("torn payload %q", p.Payload)
						return
					}
				}
				if _, err := st.AggregateRange("m", base, base.Add(time.Hour)); err != nil && len(pts) > 0 {
					t.Errorf("aggregate: %v", err)
					return
				}
				if len(pts) > 0 {
					if _, err := st.Latest("m"); err != nil {
						t.Errorf("latest: %v", err)
						return
					}
				}
			}
		}(r)
	}
	for i := 0; i < total; i++ {
		st.Append("m", base.Add(time.Duration(i)*time.Millisecond), []byte(fmt.Sprintf("%d.25", i)))
	}
	close(stop)
	wg.Wait()
	if got := st.Count("m"); got != total {
		t.Fatalf("count %d, want %d", got, total)
	}
}

// TestRetentionAcrossBlocks drops points out of sealed (compressed and raw)
// blocks: Count stays exact, Range starts at the surviving point, and the
// oldest block disappears once fully drained.
func TestRetentionAcrossBlocks(t *testing.T) {
	const max = blockSize + blockSize/2
	for _, numeric := range []bool{true, false} {
		st := NewStore(max)
		base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
		total := 3 * blockSize
		for i := 0; i < total; i++ {
			payload := fmt.Sprintf("%d.5", i)
			if !numeric {
				payload = fmt.Sprintf("raw-%d", i)
			}
			st.Append("m", base.Add(time.Duration(i)*time.Second), []byte(payload))
		}
		if got := st.Count("m"); got != max {
			t.Fatalf("numeric=%v: count %d, want exactly %d", numeric, got, max)
		}
		pts := st.Range("m", time.Time{}, base.Add(time.Hour))
		if len(pts) != max {
			t.Fatalf("numeric=%v: range %d, want %d", numeric, len(pts), max)
		}
		wantFirst := total - max
		if !pts[0].Time.Equal(base.Add(time.Duration(wantFirst) * time.Second)) {
			t.Fatalf("numeric=%v: oldest retained point at %v, want index %d", numeric, pts[0].Time, wantFirst)
		}
	}
}

// TestRollupsOutliveRetention documents the downsampling contract:
// aggregates over windows whose raw points have aged out still answer from
// rollup buckets.
func TestRollupsOutliveRetention(t *testing.T) {
	st := NewStore(10)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		st.Append("m", base.Add(time.Duration(i)*time.Second), []byte("1.5"))
	}
	if st.Count("m") != 10 {
		t.Fatalf("count %d, want 10", st.Count("m"))
	}
	// The first 90 seconds hold no raw points anymore, but the 1s buckets
	// still cover them.
	agg, err := st.AggregateRange("m", base, base.Add(50*time.Second))
	if err != nil {
		t.Fatalf("aggregate over aged-out window: %v", err)
	}
	if agg.Count != 50 || agg.Mean != 1.5 {
		t.Fatalf("aged-out window aggregate = %+v, want 50 points of 1.5", agg)
	}
}
