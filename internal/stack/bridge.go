package stack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/codegen"
	"github.com/smartfactory/sysml2conf/internal/opcua"
	"github.com/smartfactory/sysml2conf/internal/resilience"
)

// ServerResolver maps an OPC UA server name (e.g. "opcua-server-workcell02")
// to its dialable address.
type ServerResolver func(server string) (string, error)

// BridgeClient is the OPC UA client module of the architecture: for the
// machines in its group it subscribes to every configured variable on the
// owning OPC UA server and republishes values to the message broker; it
// also listens on each service's request topic and proxies the call to the
// OPC UA method node, publishing the result on the response topic.
type BridgeClient struct {
	Config codegen.ClientConfig

	resolveServer ServerResolver
	brokerAddr    string

	// ReconnectBackoff paces redial attempts after a server connection is
	// lost (default 100ms).
	ReconnectBackoff time.Duration

	mu         sync.Mutex
	opcua      map[string]*opcua.Client // per server name
	broker     *broker.Client
	wg         sync.WaitGroup
	stopCh     chan struct{}
	published  uint64
	calls      uint64
	reconnects uint64
	lostClosed uint64 // Lost() totals of connections already torn down
}

// ServicePayload is the JSON body exchanged on service request topics.
type ServicePayload struct {
	Args []any  `json:"args,omitempty"`
	ID   string `json:"id,omitempty"` // correlation id echoed in the reply
}

// ServiceReply is the JSON body published on service response topics.
type ServiceReply struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Results []any  `json:"results,omitempty"`
	ID      string `json:"id,omitempty"`
}

// VariableSample is the JSON body published on variable topics.
type VariableSample struct {
	Machine  string `json:"machine"`
	Variable string `json:"variable"`
	Category string `json:"category,omitempty"`
	Type     string `json:"type,omitempty"`
	Value    any    `json:"value"`
}

// NewBridgeClient builds the component; Start brings it up.
func NewBridgeClient(cfg codegen.ClientConfig, resolver ServerResolver, brokerAddr string) *BridgeClient {
	return &BridgeClient{
		Config:        cfg,
		resolveServer: resolver,
		brokerAddr:    brokerAddr,
		opcua:         map[string]*opcua.Client{},
		stopCh:        make(chan struct{}),
	}
}

// Start connects to the broker and all owning OPC UA servers, then wires
// subscriptions and service listeners.
func (b *BridgeClient) Start() error {
	bc, err := broker.DialClient(b.brokerAddr)
	if err != nil {
		return fmt.Errorf("stack: client %s: %w", b.Config.Name, err)
	}
	b.mu.Lock()
	b.broker = bc
	b.mu.Unlock()

	for _, cm := range b.Config.Machines {
		client, err := b.clientFor(cm.Server)
		if err != nil {
			b.Stop()
			return err
		}
		for _, v := range cm.Subscriptions {
			if err := b.wireVariable(client, cm, v); err != nil {
				b.Stop()
				return err
			}
		}
		for _, m := range cm.Methods {
			if err := b.wireService(cm, m); err != nil {
				b.Stop()
				return err
			}
		}
	}
	return nil
}

func (b *BridgeClient) backoff() time.Duration {
	if b.ReconnectBackoff > 0 {
		return b.ReconnectBackoff
	}
	return 100 * time.Millisecond
}

// reconnectPolicy is the redial pacing: starts at ReconnectBackoff and
// grows gently so a long outage does not hammer the resolver.
func (b *BridgeClient) reconnectPolicy() resilience.Backoff {
	initial := b.backoff()
	return resilience.Backoff{Initial: initial, Factor: 1.5, Max: 16 * initial}
}

func (b *BridgeClient) stopped() bool {
	select {
	case <-b.stopCh:
		return true
	default:
		return false
	}
}

// invalidate drops a cached server connection if it is still the cached one
// (idempotent under concurrent failure detection by many subscriptions).
func (b *BridgeClient) invalidate(server string, broken *opcua.Client) {
	b.mu.Lock()
	if b.opcua[server] == broken {
		delete(b.opcua, server)
		b.lostClosed += broken.Lost()
	}
	b.mu.Unlock()
	broken.Close()
}

// reconnect redials a server after invalidation, pacing retries with the
// shared resilience policy until the bridge stops. Returns nil when stopping.
func (b *BridgeClient) reconnect(server string) *opcua.Client {
	var client *opcua.Client
	err := resilience.Retry(b.stopCh, b.reconnectPolicy(), func() error {
		c, err := b.clientFor(server)
		if err != nil {
			return err
		}
		client = c
		return nil
	})
	if err != nil {
		return nil // stopping
	}
	b.mu.Lock()
	b.reconnects++
	b.mu.Unlock()
	return client
}

// Health reports liveness: the bridge must not be stopped and its broker
// connection must be alive. Loss of an OPC UA server connection is NOT a
// liveness failure — the bridge heals that itself by redialing.
func (b *BridgeClient) Health() error {
	if b.stopped() {
		return fmt.Errorf("stack: client %s: stopped", b.Config.Name)
	}
	b.mu.Lock()
	bc := b.broker
	b.mu.Unlock()
	if bc == nil {
		return fmt.Errorf("stack: client %s: no broker connection", b.Config.Name)
	}
	if err := bc.Err(); err != nil {
		return fmt.Errorf("stack: client %s: %w", b.Config.Name, err)
	}
	return nil
}

// Ready reports readiness: Health plus a live connection to every OPC UA
// server this bridge is configured against. A bridge mid-redial is alive
// but not ready.
func (b *BridgeClient) Ready() error {
	if err := b.Health(); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, cm := range b.Config.Machines {
		want[cm.Server] = true
	}
	b.mu.Lock()
	var missing []string
	for server := range want {
		if b.opcua[server] == nil {
			missing = append(missing, server)
		}
	}
	b.mu.Unlock()
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("stack: client %s: no connection to %v", b.Config.Name, missing)
	}
	return nil
}

// Reconnects returns how many times server connections were re-established.
func (b *BridgeClient) Reconnects() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reconnects
}

func (b *BridgeClient) clientFor(server string) (*opcua.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.opcua[server]; ok {
		return c, nil
	}
	addr, err := b.resolveServer(server)
	if err != nil {
		return nil, fmt.Errorf("stack: client %s: %w", b.Config.Name, err)
	}
	c, err := opcua.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("stack: client %s: server %s: %w", b.Config.Name, server, err)
	}
	b.opcua[server] = c
	return c, nil
}

func (b *BridgeClient) wireVariable(client *opcua.Client, cm codegen.ClientMachine, v codegen.VarConfig) error {
	_, ch, err := client.Subscribe(opcua.NodeID(v.NodeID))
	if err != nil {
		return fmt.Errorf("stack: client %s: subscribe %s: %w", b.Config.Name, v.NodeID, err)
	}
	b.wg.Add(1)
	go func() {
		cur, curCh := client, ch
		defer b.wg.Done()
		for {
			select {
			case <-b.stopCh:
				return
			case change, ok := <-curCh:
				if !ok {
					// Connection lost: invalidate, redial, resubscribe —
					// an OPC UA server restart heals transparently.
					b.invalidate(cm.Server, cur)
					for {
						next := b.reconnect(cm.Server)
						if next == nil {
							return // stopping
						}
						_, nextCh, err := next.Subscribe(opcua.NodeID(v.NodeID))
						if err == nil {
							cur, curCh = next, nextCh
							break
						}
						b.invalidate(cm.Server, next)
					}
					continue
				}
				var val any
				_ = json.Unmarshal(change.Value.Value, &val)
				if err := b.publishJSON(v.Topic, VariableSample{
					Machine: cm.Machine, Variable: v.Name, Category: v.Category,
					Type: v.Type, Value: val,
				}); err != nil {
					return
				}
			}
		}
	}()
	return nil
}

// payloadBuf is a pooled encode buffer for publish payloads: the bridge
// publishes one JSON body per variable change, and broker.Client frames the
// payload before Publish returns, so the buffer can be recycled immediately
// afterwards instead of allocating per sample.
type payloadBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var payloadPool = sync.Pool{New: func() any {
	p := &payloadBuf{}
	p.enc = json.NewEncoder(&p.buf)
	return p
}}

// publishJSON encodes v into a pooled buffer and publishes it to topic.
// An encode failure drops the sample (nil, matching the old skip-on-marshal
// behavior); a publish failure is returned so callers stop their loops.
func (b *BridgeClient) publishJSON(topic string, v any) error {
	p := payloadPool.Get().(*payloadBuf)
	p.buf.Reset()
	if err := p.enc.Encode(v); err != nil {
		payloadPool.Put(p)
		return nil
	}
	payload := p.buf.Bytes()
	payload = payload[:len(payload)-1] // drop the encoder's trailing newline
	err := b.publish(topic, payload)
	payloadPool.Put(p)
	return err
}

func (b *BridgeClient) publish(topic string, payload []byte) error {
	b.mu.Lock()
	bc := b.broker
	b.mu.Unlock()
	if bc == nil {
		return fmt.Errorf("stack: broker connection closed")
	}
	if err := bc.Publish(topic, payload, false); err != nil {
		return err
	}
	b.mu.Lock()
	b.published++
	b.mu.Unlock()
	return nil
}

func (b *BridgeClient) wireService(cm codegen.ClientMachine, m codegen.MethodConfig) error {
	b.mu.Lock()
	bc := b.broker
	b.mu.Unlock()
	// Service requests ride an acked session: a request published while this
	// bridge is down (or mid-restart) is redelivered once it reattaches under
	// the same deterministic session name, instead of being dropped. The ack
	// goes out only after the reply is published.
	session := "svc/" + b.Config.Name + "/" + m.RequestTopic
	subID, ch, err := bc.SubscribeSession(m.RequestTopic, session, 0)
	if err != nil {
		return fmt.Errorf("stack: client %s: subscribe %s: %w", b.Config.Name, m.RequestTopic, err)
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			select {
			case <-b.stopCh:
				return
			case msg, ok := <-ch:
				if !ok {
					return
				}
				reply := b.invoke(cm.Server, m, msg.Payload)
				if err := b.publishJSON(m.ResponseTopic, reply); err != nil {
					return
				}
				// Ack failure is survivable: the broker redelivers and the
				// client-side session dedup absorbs the duplicate.
				_ = bc.Ack(subID, msg.Seq)
			}
		}
	}()
	return nil
}

// invoke proxies a service call to the OPC UA method node, looking up the
// current server connection each time (so a reconnected server is used) and
// retrying once through a fresh connection when the transport failed.
func (b *BridgeClient) invoke(server string, m codegen.MethodConfig, body []byte) ServiceReply {
	var req ServicePayload
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return ServiceReply{OK: false, Error: "malformed request: " + err.Error()}
		}
	}
	args := make([]opcua.Variant, len(req.Args))
	for i, a := range req.Args {
		args[i] = opcua.V(a)
	}
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()

	call := func() ([]opcua.Variant, error, *opcua.Client) {
		client, err := b.clientFor(server)
		if err != nil {
			return nil, err, nil
		}
		results, err := client.Call(opcua.NodeID(m.NodeID), args...)
		return results, err, client
	}
	results, err, client := call()
	if err != nil && client != nil {
		// Transport vs application error: a healthy connection can still
		// browse; if it cannot, redial once and retry the call.
		if _, berr := client.Browse(""); berr != nil {
			b.invalidate(server, client)
			results, err, _ = call()
		}
	}
	if err != nil {
		return ServiceReply{OK: false, Error: err.Error(), ID: req.ID}
	}
	out := make([]any, len(results))
	for i, r := range results {
		var v any
		_ = json.Unmarshal(r.Value, &v)
		out[i] = v
	}
	return ServiceReply{OK: true, Results: out, ID: req.ID}
}

// Stats returns lifetime counters (published samples, proxied calls).
func (b *BridgeClient) Stats() (published, calls uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.calls
}

// LostSamples totals the monitored-item notifications this bridge knows it
// missed across all its OPC UA connections, past and present. Telemetry is
// the lossy tier — this makes the loss a number instead of a mystery.
func (b *BridgeClient) LostSamples() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.lostClosed
	for _, c := range b.opcua {
		total += c.Lost()
	}
	return total
}

// Stop disconnects everything.
func (b *BridgeClient) Stop() {
	select {
	case <-b.stopCh:
	default:
		close(b.stopCh)
	}
	b.mu.Lock()
	for name, c := range b.opcua {
		b.lostClosed += c.Lost()
		c.Close()
		delete(b.opcua, name)
	}
	bc := b.broker
	b.broker = nil
	b.mu.Unlock()
	if bc != nil {
		bc.Close()
	}
	b.wg.Wait()
}

// CallService is a convenience for invoking a machine service through the
// broker from any client connection (used by the SOM layer and tests).
func CallService(bc *broker.Client, m codegen.MethodConfig, args []any, timeout time.Duration) (ServiceReply, error) {
	payload, err := json.Marshal(ServicePayload{Args: args})
	if err != nil {
		return ServiceReply{}, err
	}
	raw, err := bc.Request(m.RequestTopic, m.ResponseTopic, payload, timeout)
	if err != nil {
		return ServiceReply{}, err
	}
	var reply ServiceReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return ServiceReply{}, fmt.Errorf("stack: malformed service reply: %w", err)
	}
	return reply, nil
}
