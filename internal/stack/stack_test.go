package stack

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/codegen"
	"github.com/smartfactory/sysml2conf/internal/machinesim"
	"github.com/smartfactory/sysml2conf/internal/opcua"
)

// testRig wires one machine emulator, one MachineServer and one
// BridgeClient to a broker.
type testRig struct {
	machine *machinesim.Machine
	server  *MachineServer
	client  *BridgeClient
	brk     *broker.Broker
	mc      codegen.MachineConfig
}

func machineConfig() codegen.MachineConfig {
	return codegen.MachineConfig{
		Machine: "emco", Line: "line1", Workcell: "wc02",
		Server: "opcua-server-wc02",
		Driver: codegen.DriverConfig{Type: "EMCODriver", Protocol: "EMCODriver",
			Parameters: map[string]any{"ip": "10.0.0.1", "ip_port": 5557}},
		Variables: []codegen.VarConfig{
			{Name: "actualX", Category: "Axes", Path: "Axes/actualX", Type: "Double",
				Direction: "out", NodeID: "ns=1;s=emco/Axes/actualX",
				Topic: "factory/line1/wc02/emco/values/Axes/actualX"},
			{Name: "mode", Category: "Status", Path: "Status/mode", Type: "String",
				Direction: "out", NodeID: "ns=1;s=emco/Status/mode",
				Topic: "factory/line1/wc02/emco/values/Status/mode"},
		},
		Methods: []codegen.MethodConfig{
			{Name: "is_ready", NodeID: "ns=1;s=emco/services/is_ready",
				RequestTopic:  "factory/line1/wc02/emco/services/is_ready/request",
				ResponseTopic: "factory/line1/wc02/emco/services/is_ready/response",
				Returns:       []codegen.ParamConfig{{Name: "result", Type: "Boolean"}}},
			{Name: "start_program", NodeID: "ns=1;s=emco/services/start_program",
				RequestTopic:  "factory/line1/wc02/emco/services/start_program/request",
				ResponseTopic: "factory/line1/wc02/emco/services/start_program/response",
				Args:          []codegen.ParamConfig{{Name: "program", Type: "String"}},
				Returns:       []codegen.ParamConfig{{Name: "result", Type: "Boolean"}}},
		},
	}
}

func startRig(t *testing.T) *testRig {
	t.Helper()
	mc := machineConfig()

	machine := machinesim.New(machinesim.Spec{
		Name: "emco",
		Vars: []machinesim.VarSpec{
			{Name: "Axes/actualX", Type: "Double", Category: "Axes"},
			{Name: "Status/mode", Type: "String", Category: "Status"},
		},
		Methods: []machinesim.MethodSpec{
			{Name: "is_ready", Returns: []string{"Boolean"}},
			{Name: "start_program", Args: []string{"String"}, Returns: []string{"Boolean"}},
		},
	})
	if err := machine.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { machine.Close() })

	srv := NewMachineServer(codegen.ServerConfig{Name: "opcua-server-wc02", Workcell: "wc02"},
		[]codegen.MachineConfig{mc},
		MapResolver(map[string]string{"emco": machine.Addr()}), 10*time.Millisecond)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { brk.Close() })

	client := NewBridgeClient(codegen.ClientConfig{
		Name: "opcua-client-1",
		Machines: []codegen.ClientMachine{{
			Machine: "emco", Workcell: "wc02", Server: "opcua-server-wc02",
			Subscriptions: mc.Variables, Methods: mc.Methods,
		}},
	}, func(string) (string, error) { return srv.Addr(), nil }, brk.Addr())
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Stop)

	return &testRig{machine: machine, server: srv, client: client, brk: brk, mc: mc}
}

func TestServerBuildsAddressSpace(t *testing.T) {
	rig := startRig(t)
	objects, variables, methods := rig.server.Space.CountByClass()
	if objects != 2 { // root + emco
		t.Errorf("objects = %d", objects)
	}
	if variables != 2 || methods != 2 {
		t.Errorf("variables/methods = %d/%d", variables, methods)
	}
}

func TestServerPollsMachineIntoSpace(t *testing.T) {
	rig := startRig(t)
	rig.machine.Step() // move values off their initial state
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		v, err := rig.server.Space.Read(opcua.NodeID("ns=1;s=emco/Axes/actualX"))
		if err == nil && v.Type == "Double" && v.AsFloat() != 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("polled value never reached the address space")
}

func TestBridgePublishesToBroker(t *testing.T) {
	rig := startRig(t)
	_, ch, err := rig.brk.Subscribe("factory/line1/wc02/emco/values/#")
	if err != nil {
		t.Fatal(err)
	}
	rig.machine.Step()
	select {
	case m := <-ch:
		var sample VariableSample
		if err := json.Unmarshal(m.Payload, &sample); err != nil {
			t.Fatalf("payload %s: %v", m.Payload, err)
		}
		if sample.Machine != "emco" || sample.Value == nil {
			t.Errorf("sample = %+v", sample)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no sample published")
	}
	// The counter increments after the broker ack returns to the bridge,
	// which may trail local delivery; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if pub, _ := rig.client.Stats(); pub > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("publish counter zero")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServiceProxyThroughBridge(t *testing.T) {
	rig := startRig(t)
	bc, err := broker.DialClient(rig.brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	reply, err := CallService(bc, rig.mc.Methods[0], nil, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK || reply.Results[0] != true {
		t.Errorf("is_ready reply = %+v", reply)
	}
	if rig.machine.CallCount("is_ready") != 1 {
		t.Errorf("machine call count = %d", rig.machine.CallCount("is_ready"))
	}

	// With args.
	reply, err = CallService(bc, rig.mc.Methods[1], []any{"prog.nc"}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK {
		t.Errorf("start_program reply = %+v", reply)
	}
	_, calls := rig.client.Stats()
	if calls != 2 {
		t.Errorf("bridge call counter = %d", calls)
	}
}

func TestIdentityResolver(t *testing.T) {
	addr, err := IdentityResolver("m", codegen.DriverConfig{
		Parameters: map[string]any{"ip": "10.1.2.3", "ip_port": float64(5557)}})
	if err != nil || addr != "10.1.2.3:5557" {
		t.Errorf("addr = %q err = %v", addr, err)
	}
	if _, err := IdentityResolver("m", codegen.DriverConfig{Parameters: map[string]any{}}); err == nil {
		t.Error("want error without ip")
	}
}

func TestServerStartFailsOnBadEndpoint(t *testing.T) {
	mc := machineConfig()
	srv := NewMachineServer(codegen.ServerConfig{Name: "s"}, []codegen.MachineConfig{mc},
		MapResolver(map[string]string{}), 0)
	err := srv.Start("127.0.0.1:0")
	if err == nil || !strings.Contains(err.Error(), "no endpoint") {
		t.Errorf("err = %v", err)
	}
}

func TestBridgeStartFailsOnMissingServer(t *testing.T) {
	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	mc := machineConfig()
	client := NewBridgeClient(codegen.ClientConfig{
		Name:     "c",
		Machines: []codegen.ClientMachine{{Machine: "emco", Server: "ghost", Subscriptions: mc.Variables}},
	}, func(s string) (string, error) { return "", strings.NewReader("").UnreadByte() },
		brk.Addr())
	// Resolver error must surface from Start.
	if err := client.Start(); err == nil {
		t.Error("want error for unresolvable server")
		client.Stop()
	}
}

func TestMalformedServiceRequest(t *testing.T) {
	rig := startRig(t)
	bc, err := broker.DialClient(rig.brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	raw, err := bc.Request(rig.mc.Methods[0].RequestTopic, rig.mc.Methods[0].ResponseTopic,
		[]byte(`{not json`), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var reply ServiceReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK || !strings.Contains(reply.Error, "malformed") {
		t.Errorf("reply = %+v", reply)
	}
}
