package stack

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/codegen"
)

func monitorConfig() codegen.MonitorConfig {
	return codegen.MonitorConfig{
		Name: "monitor-wc02", Workcell: "wc02", Line: "line1",
		SourceFilter: "factory/line1/wc02/+/values/#",
		PeriodMs:     20,
		Attributes: []codegen.MonitorAttr{
			{Name: "samples_total", Type: "Integer", Function: codegen.FnSamplesTotal,
				Topic: "factory/line1/wc02/_monitor/samples_total"},
			{Name: "variables_live", Type: "Integer", Function: codegen.FnVariablesLive,
				Topic: "factory/line1/wc02/_monitor/variables_live"},
			{Name: "mean_load", Type: "Double", Function: codegen.FnMean, Source: "load",
				Topic: "factory/line1/wc02/_monitor/mean_load"},
			{Name: "max_load", Type: "Double", Function: codegen.FnMax, Source: "load",
				Topic: "factory/line1/wc02/_monitor/max_load"},
		},
	}
}

func publishSample(t *testing.T, bc *broker.Client, machine, variable string, value any) {
	t.Helper()
	payload, err := json.Marshal(VariableSample{Machine: machine, Variable: variable, Value: value})
	if err != nil {
		t.Fatal(err)
	}
	topic := "factory/line1/wc02/" + machine + "/values/Cat/" + variable
	if err := bc.Publish(topic, payload, false); err != nil {
		t.Fatal(err)
	}
}

func TestWorkcellMonitorAggregations(t *testing.T) {
	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer brk.Close()

	mon := NewWorkcellMonitor(monitorConfig(), brk.Addr())
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	_, monCh, err := brk.Subscribe("factory/line1/wc02/_monitor/#")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := broker.DialClient(brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	publishSample(t, pub, "emco", "load", 10.0)
	publishSample(t, pub, "emco", "load", 30.0)
	publishSample(t, pub, "emco", "mode", "running") // non-numeric: counted, not aggregated
	publishSample(t, pub, "ur5", "speed", 2.0)

	// Await stable values: mean 20, max 30, samples 4, live 3.
	want := map[string]float64{
		"samples_total":  4,
		"variables_live": 3,
		"mean_load":      20,
		"max_load":       30,
	}
	got := map[string]float64{}
	deadline := time.After(5 * time.Second)
	for {
		allMatch := len(got) == len(want)
		for k, v := range want {
			if got[k] != v {
				allMatch = false
			}
		}
		if allMatch {
			break
		}
		select {
		case m := <-monCh:
			var s MonitorSample
			if err := json.Unmarshal(m.Payload, &s); err != nil {
				t.Fatal(err)
			}
			got[s.Attribute] = s.Value
		case <-deadline:
			t.Fatalf("aggregates never converged: got %v, want %v", got, want)
		}
	}

	samples, publishes, live := mon.Stats()
	if samples != 4 || live != 3 || publishes == 0 {
		t.Errorf("stats = %d/%d/%d", samples, publishes, live)
	}
}

func TestWorkcellMonitorRetainsLatest(t *testing.T) {
	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	mon := NewWorkcellMonitor(monitorConfig(), brk.Addr())
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	pub, err := broker.DialClient(brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishSample(t, pub, "emco", "load", 5.0)

	// Monitor publishes retained: a late subscriber immediately sees the
	// latest aggregate.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, publishes, _ := mon.Stats()
		if publishes > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	late, err := broker.DialClient(brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	_, ch, err := late.Subscribe("factory/line1/wc02/_monitor/samples_total")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if !m.Retained {
			t.Error("late subscriber should receive a retained aggregate")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no retained aggregate for late subscriber")
	}
}

func TestClassifyViaBuildIntermediate(t *testing.T) {
	// Unknown monitor attribute shapes must fail generation loudly; this is
	// covered through the codegen path in codegen tests, here we check the
	// monitor ignores sources it was not configured for.
	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	mon := NewWorkcellMonitor(monitorConfig(), brk.Addr())
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()
	pub, err := broker.DialClient(brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishSample(t, pub, "emco", "unrelated", 999.0)
	time.Sleep(100 * time.Millisecond)
	samples, _, _ := mon.Stats()
	if samples != 1 {
		t.Errorf("samples = %d", samples)
	}
}
