package stack

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/codegen"
)

// WorkcellMonitor computes the workcell-level monitoring attributes the
// model declares (paper Code 1: "variables can be defined to capture
// operational information relevant to the specific layer"): it subscribes
// to all machine values of its workcell, maintains the configured
// aggregations, and periodically publishes them on the workcell's
// "_monitor" topics.
type WorkcellMonitor struct {
	Config codegen.MonitorConfig

	brokerAddr string

	mu        sync.Mutex
	samples   uint64
	series    map[string]struct{}
	means     map[string]*meanAcc // variable name -> accumulator
	maxes     map[string]float64
	maxSeen   map[string]bool
	client    *broker.Client
	stopCh    chan struct{}
	wg        sync.WaitGroup
	publishes uint64
}

type meanAcc struct {
	sum   float64
	count uint64
}

// MonitorSample is the JSON payload published for every monitor attribute.
type MonitorSample struct {
	Workcell  string  `json:"workcell"`
	Attribute string  `json:"attribute"`
	Value     float64 `json:"value"`
}

// NewWorkcellMonitor builds the component; Start brings it up.
func NewWorkcellMonitor(cfg codegen.MonitorConfig, brokerAddr string) *WorkcellMonitor {
	return &WorkcellMonitor{
		Config:     cfg,
		brokerAddr: brokerAddr,
		series:     map[string]struct{}{},
		means:      map[string]*meanAcc{},
		maxes:      map[string]float64{},
		maxSeen:    map[string]bool{},
		stopCh:     make(chan struct{}),
	}
}

// Start connects to the broker, subscribes to the workcell's values and
// begins the publish ticker.
func (w *WorkcellMonitor) Start() error {
	client, err := broker.DialClient(w.brokerAddr)
	if err != nil {
		return fmt.Errorf("stack: monitor %s: %w", w.Config.Name, err)
	}
	_, ch, err := client.Subscribe(w.Config.SourceFilter)
	if err != nil {
		client.Close()
		return fmt.Errorf("stack: monitor %s: subscribe: %w", w.Config.Name, err)
	}
	w.mu.Lock()
	w.client = client
	w.mu.Unlock()

	w.wg.Add(2)
	go w.consume(ch)
	go w.publishLoop()
	return nil
}

func (w *WorkcellMonitor) consume(ch <-chan broker.Message) {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopCh:
			return
		case m, ok := <-ch:
			if !ok {
				return
			}
			w.ingest(m)
		}
	}
}

func (w *WorkcellMonitor) ingest(m broker.Message) {
	var sample VariableSample
	if err := json.Unmarshal(m.Payload, &sample); err != nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples++
	w.series[m.Topic] = struct{}{}
	val, numeric := asFloat(sample.Value)
	if !numeric {
		return
	}
	for _, attr := range w.Config.Attributes {
		if attr.Source == "" || attr.Source != sample.Variable {
			continue
		}
		switch attr.Function {
		case codegen.FnMean:
			acc := w.means[attr.Source]
			if acc == nil {
				acc = &meanAcc{}
				w.means[attr.Source] = acc
			}
			acc.sum += val
			acc.count++
		case codegen.FnMax:
			if !w.maxSeen[attr.Source] || val > w.maxes[attr.Source] {
				w.maxes[attr.Source] = val
				w.maxSeen[attr.Source] = true
			}
		}
	}
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func (w *WorkcellMonitor) publishLoop() {
	defer w.wg.Done()
	period := time.Duration(w.Config.PeriodMs) * time.Millisecond
	if period <= 0 {
		period = 500 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-ticker.C:
			w.publishOnce()
		}
	}
}

func (w *WorkcellMonitor) publishOnce() {
	w.mu.Lock()
	client := w.client
	type out struct {
		attr  codegen.MonitorAttr
		value float64
		ok    bool
	}
	var outs []out
	for _, attr := range w.Config.Attributes {
		o := out{attr: attr}
		switch attr.Function {
		case codegen.FnSamplesTotal:
			o.value, o.ok = float64(w.samples), true
		case codegen.FnVariablesLive:
			o.value, o.ok = float64(len(w.series)), true
		case codegen.FnMean:
			if acc := w.means[attr.Source]; acc != nil && acc.count > 0 {
				o.value, o.ok = acc.sum/float64(acc.count), true
			}
		case codegen.FnMax:
			if w.maxSeen[attr.Source] {
				o.value, o.ok = w.maxes[attr.Source], true
			}
		}
		outs = append(outs, o)
	}
	w.mu.Unlock()
	if client == nil {
		return
	}
	for _, o := range outs {
		if !o.ok {
			continue
		}
		payload, err := json.Marshal(MonitorSample{
			Workcell: w.Config.Workcell, Attribute: o.attr.Name, Value: o.value,
		})
		if err != nil {
			continue
		}
		if err := client.Publish(o.attr.Topic, payload, true); err != nil {
			return
		}
		w.mu.Lock()
		w.publishes++
		w.mu.Unlock()
	}
}

// Health reports liveness: the monitor must not be stopped and its broker
// connection must be alive.
func (w *WorkcellMonitor) Health() error {
	select {
	case <-w.stopCh:
		return fmt.Errorf("stack: monitor %s: stopped", w.Config.Name)
	default:
	}
	w.mu.Lock()
	client := w.client
	w.mu.Unlock()
	if client == nil {
		return fmt.Errorf("stack: monitor %s: no broker connection", w.Config.Name)
	}
	if err := client.Err(); err != nil {
		return fmt.Errorf("stack: monitor %s: %w", w.Config.Name, err)
	}
	return nil
}

// Stats returns ingest/publish counters.
func (w *WorkcellMonitor) Stats() (samples, publishes uint64, liveSeries int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples, w.publishes, len(w.series)
}

// Stop disconnects the monitor.
func (w *WorkcellMonitor) Stop() {
	select {
	case <-w.stopCh:
	default:
		close(w.stopCh)
	}
	w.mu.Lock()
	client := w.client
	w.client = nil
	w.mu.Unlock()
	if client != nil {
		client.Close()
	}
	w.wg.Wait()
}
