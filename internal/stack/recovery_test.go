package stack

import (
	"sync"
	"testing"
	"time"

	"github.com/smartfactory/sysml2conf/internal/broker"
	"github.com/smartfactory/sysml2conf/internal/codegen"
	"github.com/smartfactory/sysml2conf/internal/machinesim"
)

// TestBridgeSurvivesServerRestart: the OPC UA server is torn down and a
// replacement comes up at a new address; the bridge client reconnects,
// resubscribes and keeps publishing, and service calls work again.
func TestBridgeSurvivesServerRestart(t *testing.T) {
	mc := machineConfig()

	machine := machinesim.New(machinesim.Spec{
		Name: "emco",
		Vars: []machinesim.VarSpec{
			{Name: "Axes/actualX", Type: "Double", Category: "Axes"},
			{Name: "Status/mode", Type: "String", Category: "Status"},
		},
		Methods: []machinesim.MethodSpec{
			{Name: "is_ready", Returns: []string{"Boolean"}},
			{Name: "start_program", Args: []string{"String"}, Returns: []string{"Boolean"}},
		},
	})
	if err := machine.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	machine.StartGenerator(5 * time.Millisecond)

	newServer := func() *MachineServer {
		srv := NewMachineServer(codegen.ServerConfig{Name: "opcua-server-wc02", Workcell: "wc02"},
			[]codegen.MachineConfig{mc},
			MapResolver(map[string]string{"emco": machine.Addr()}), 5*time.Millisecond)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := newServer()

	var mu sync.Mutex
	serverAddr := srv.Addr()
	resolver := func(string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		return serverAddr, nil
	}

	brk := broker.New()
	if err := brk.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer brk.Close()

	client := NewBridgeClient(codegen.ClientConfig{
		Name: "opcua-client-1",
		Machines: []codegen.ClientMachine{{
			Machine: "emco", Workcell: "wc02", Server: "opcua-server-wc02",
			Subscriptions: mc.Variables, Methods: mc.Methods,
		}},
	}, resolver, brk.Addr())
	client.ReconnectBackoff = 10 * time.Millisecond
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	defer client.Stop()

	_, ch, err := brk.Subscribe("factory/line1/wc02/emco/values/#")
	if err != nil {
		t.Fatal(err)
	}
	awaitSample := func(within time.Duration) bool {
		deadline := time.After(within)
		for {
			select {
			case <-ch:
				return true
			case <-deadline:
				return false
			}
		}
	}
	if !awaitSample(5 * time.Second) {
		t.Fatal("no samples before restart")
	}

	// Restart the server at a new address.
	srv.Stop()
	srv2 := newServer()
	defer srv2.Stop()
	mu.Lock()
	serverAddr = srv2.Addr()
	mu.Unlock()

	// The bridge reconnects and samples resume.
	deadline := time.Now().Add(10 * time.Second)
	for client.Reconnects() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bridge never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Drain anything stale, then demand a fresh sample.
	drain := true
	for drain {
		select {
		case <-ch:
		default:
			drain = false
		}
	}
	if !awaitSample(10 * time.Second) {
		t.Fatal("no samples after server restart")
	}

	// Service calls work against the new server too.
	bc, err := broker.DialClient(brk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	reply, err := CallService(bc, mc.Methods[0], nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK {
		t.Errorf("is_ready after restart: %+v", reply)
	}
}
