// Package stack implements the software components of the factory stack
// that the generated configuration deploys: the per-workcell OPC UA server
// (fed by machine drivers), the OPC UA client bridging servers to the
// message broker, and a thin wrapper around the historian. The simulated
// Kubernetes cluster in internal/deploy instantiates these components from
// the generated manifests, closing the loop from SysML model to running
// software.
package stack

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/smartfactory/sysml2conf/internal/codegen"
	"github.com/smartfactory/sysml2conf/internal/machinesim"
	"github.com/smartfactory/sysml2conf/internal/opcua"
	"github.com/smartfactory/sysml2conf/internal/resilience"
)

// EndpointResolver maps a modeled driver endpoint (the ip/ip_port attributes
// from the SysML model) to an actual dialable address. In production this is
// the identity; in the simulation it maps modeled plant IPs to the local
// machine emulators.
type EndpointResolver func(machine string, driver codegen.DriverConfig) (string, error)

// IdentityResolver dials exactly what the model says.
func IdentityResolver(_ string, driver codegen.DriverConfig) (string, error) {
	ip, _ := driver.Parameters["ip"].(string)
	port, ok := driver.Parameters["ip_port"]
	if ip == "" || !ok {
		return "", fmt.Errorf("stack: driver parameters lack ip/ip_port: %v", driver.Parameters)
	}
	return fmt.Sprintf("%v:%v", ip, port), nil
}

// MapResolver resolves machine names through a fixed table.
func MapResolver(addrs map[string]string) EndpointResolver {
	return func(machine string, _ codegen.DriverConfig) (string, error) {
		addr, ok := addrs[machine]
		if !ok {
			return "", fmt.Errorf("stack: no endpoint for machine %q", machine)
		}
		return addr, nil
	}
}

// MachineServer is the per-workcell OPC UA server component: it builds an
// address space mirroring the workcell's machines (one object per machine,
// one variable node per modeled variable, one method node per service),
// connects to each machine through its driver protocol, polls variables
// into the address space and proxies method calls.
type MachineServer struct {
	Config   codegen.ServerConfig
	Machines []codegen.MachineConfig

	Server *opcua.Server
	Space  *opcua.AddressSpace

	// ListenWrapper, when set before Start, decorates the OPC UA endpoint's
	// TCP listener (the fault-injection layer's interposition hook).
	ListenWrapper func(ln net.Listener) net.Listener

	resolver EndpointResolver
	poll     time.Duration

	mu         sync.Mutex
	conns      map[string]*machinesim.Conn
	breakers   map[string]*resilience.Breaker // per-machine driver circuit
	reconnects uint64
	stopCh     chan struct{}
	wg         sync.WaitGroup
	polls      uint64
	errs       uint64
}

// reconnectThreshold is the number of consecutive poll errors after which
// the driver circuit opens and the connection is torn down and redialed.
const reconnectThreshold = 3

// NewMachineServer builds the component; Start brings it up.
func NewMachineServer(cfg codegen.ServerConfig, machines []codegen.MachineConfig,
	resolver EndpointResolver, pollPeriod time.Duration) *MachineServer {
	if pollPeriod <= 0 {
		pollPeriod = 50 * time.Millisecond
	}
	return &MachineServer{
		Config:   cfg,
		Machines: machines,
		resolver: resolver,
		poll:     pollPeriod,
		conns:    map[string]*machinesim.Conn{},
		breakers: map[string]*resilience.Breaker{},
		stopCh:   make(chan struct{}),
	}
}

// breaker returns the per-machine driver circuit breaker, creating it on
// first use: it opens after reconnectThreshold consecutive failed poll
// cycles and allows a redial probe every few poll periods.
func (s *MachineServer) breaker(machine string) *resilience.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[machine]
	if br == nil {
		br = resilience.NewBreaker(reconnectThreshold, 4*s.poll)
		s.breakers[machine] = br
	}
	return br
}

// Start connects the drivers, builds the address space and begins listening
// on addr ("127.0.0.1:0" for an ephemeral port) and polling.
func (s *MachineServer) Start(addr string) error {
	s.Space = opcua.NewAddressSpace()
	for _, mc := range s.Machines {
		if err := s.addMachine(mc); err != nil {
			s.Stop()
			return err
		}
	}
	s.Server = opcua.NewServer(s.Config.Name, s.Space)
	s.Server.ListenWrapper = s.ListenWrapper
	if err := s.Server.Listen(addr); err != nil {
		s.Stop()
		return err
	}
	s.wg.Add(1)
	go s.pollLoop()
	return nil
}

// Addr returns the OPC UA endpoint address.
func (s *MachineServer) Addr() string {
	if s.Server == nil {
		return ""
	}
	return s.Server.Addr()
}

// Stats returns poll-loop counters.
func (s *MachineServer) Stats() (polls, errors uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.polls, s.errs
}

// Reconnects returns how many driver connections were re-established.
func (s *MachineServer) Reconnects() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

func (s *MachineServer) addMachine(mc codegen.MachineConfig) error {
	addr, err := s.resolver(mc.Machine, mc.Driver)
	if err != nil {
		return err
	}
	conn, err := machinesim.DialMachine(addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("stack: server %s: driver connection to %s (%s): %w",
			s.Config.Name, mc.Machine, addr, err)
	}
	s.mu.Lock()
	s.conns[mc.Machine] = conn
	s.mu.Unlock()

	objID := opcua.NewNodeID(1, mc.Machine)
	if _, err := s.Space.AddObject(s.Space.Root(), objID, mc.Machine, map[string]string{
		"workcell": mc.Workcell, "driver": mc.Driver.Type, "protocol": mc.Driver.Protocol,
	}); err != nil {
		return err
	}
	for _, v := range mc.Variables {
		meta := map[string]string{"category": v.Category, "direction": v.Direction, "topic": v.Topic}
		if _, err := s.Space.AddVariable(objID, opcua.NodeID(v.NodeID), v.Name, v.Type, opcua.V(nil), meta); err != nil {
			return err
		}
	}
	for _, m := range mc.Methods {
		m := m
		machine := mc.Machine
		fn := func(args []opcua.Variant) ([]opcua.Variant, error) {
			return s.callMachine(machine, m, args)
		}
		meta := map[string]string{"requestTopic": m.RequestTopic, "responseTopic": m.ResponseTopic}
		if _, err := s.Space.AddMethod(objID, opcua.NodeID(m.NodeID), m.Name, fn, meta); err != nil {
			return err
		}
	}
	return nil
}

func (s *MachineServer) callMachine(machine string, m codegen.MethodConfig, args []opcua.Variant) ([]opcua.Variant, error) {
	s.mu.Lock()
	conn := s.conns[machine]
	s.mu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("stack: no driver connection to %s", machine)
	}
	goArgs := make([]any, len(args))
	for i, a := range args {
		var v any
		_ = json.Unmarshal(a.Value, &v)
		goArgs[i] = v
	}
	results, err := conn.Call(m.Name, goArgs...)
	if err != nil {
		return nil, err
	}
	out := make([]opcua.Variant, len(results))
	for i, r := range results {
		out[i] = opcua.V(r)
	}
	return out, nil
}

func (s *MachineServer) pollLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.pollOnce()
		}
	}
}

func (s *MachineServer) pollOnce() {
	for i := range s.Machines {
		mc := &s.Machines[i]
		s.mu.Lock()
		conn := s.conns[mc.Machine]
		s.mu.Unlock()
		if conn == nil {
			s.tryReconnect(mc)
			continue
		}
		failed := false
		for _, v := range mc.Variables {
			val, err := conn.Get(v.Path)
			s.mu.Lock()
			s.polls++
			if err != nil {
				s.errs++
				failed = true
				s.mu.Unlock()
				break // the connection is suspect; stop this machine's cycle
			}
			s.mu.Unlock()
			_ = s.Space.Write(opcua.NodeID(v.NodeID), opcua.V(val))
		}
		br := s.breaker(mc.Machine)
		if failed {
			br.Failure()
			if br.State() == resilience.Open {
				// The circuit tripped: the connection is beyond suspicion.
				// Drop it; tryReconnect probes once the cooldown elapses.
				conn.Close()
				s.mu.Lock()
				if s.conns[mc.Machine] == conn {
					delete(s.conns, mc.Machine)
				}
				s.mu.Unlock()
			}
		} else {
			br.Success()
		}
	}
}

// tryReconnect redials a machine whose driver connection was dropped. The
// circuit breaker paces probes (one per cooldown while the machine stays
// down); success closes the circuit and resumes polling transparently — a
// machine power-cycle heals without redeploying the server.
func (s *MachineServer) tryReconnect(mc *codegen.MachineConfig) {
	br := s.breaker(mc.Machine)
	if !br.Allow() {
		return
	}
	addr, err := s.resolver(mc.Machine, mc.Driver)
	if err != nil {
		br.Failure()
		return
	}
	conn, err := machinesim.DialMachine(addr, time.Second)
	if err != nil {
		br.Failure()
		return
	}
	if err := conn.Ping(); err != nil {
		conn.Close()
		br.Failure()
		return
	}
	br.Success()
	s.mu.Lock()
	s.conns[mc.Machine] = conn
	s.reconnects++
	s.mu.Unlock()
}

// Health reports liveness: the component must not be stopped and its OPC UA
// endpoint must be accepting connections. A dead machine does NOT fail
// liveness — the server heals driver connections itself.
func (s *MachineServer) Health() error {
	select {
	case <-s.stopCh:
		return fmt.Errorf("stack: server %s: stopped", s.Config.Name)
	default:
	}
	if s.Server == nil {
		return fmt.Errorf("stack: server %s: not started", s.Config.Name)
	}
	return s.Server.Health()
}

// Ready reports readiness: Health plus a live driver connection to every
// configured machine. A server mid-redial serves stale values and is
// therefore alive but not ready.
func (s *MachineServer) Ready() error {
	if err := s.Health(); err != nil {
		return err
	}
	s.mu.Lock()
	var missing []string
	for i := range s.Machines {
		if s.conns[s.Machines[i].Machine] == nil {
			missing = append(missing, s.Machines[i].Machine)
		}
	}
	s.mu.Unlock()
	if len(missing) > 0 {
		return fmt.Errorf("stack: server %s: no driver connection to %v", s.Config.Name, missing)
	}
	return nil
}

// BreakerTrips returns how many times a machine's driver circuit opened
// (restart counters for the supervision layer's reporting).
func (s *MachineServer) BreakerTrips(machine string) uint64 {
	s.mu.Lock()
	br := s.breakers[machine]
	s.mu.Unlock()
	if br == nil {
		return 0
	}
	return br.Trips()
}

// Stop shuts the component down.
func (s *MachineServer) Stop() {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
	}
	s.wg.Wait()
	if s.Server != nil {
		s.Server.Close()
	}
	s.mu.Lock()
	for name, c := range s.conns {
		c.Close()
		delete(s.conns, name)
	}
	s.mu.Unlock()
}
