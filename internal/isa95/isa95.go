// Package isa95 maps a resolved SysML v2 model onto the ISA-95 (IEC 62264)
// equipment hierarchy — Enterprise, Site, Area, ProductionLine, Workcell,
// Machine — and validates that the model follows the paper's modeling
// methodology (hierarchy well-formed, machines concrete with drivers, ...).
package isa95

import (
	"fmt"

	"github.com/smartfactory/sysml2conf/internal/sysml/sema"
)

// Level is one ISA-95 equipment hierarchy level.
type Level int

// Hierarchy levels from the enterprise down to individual machines.
const (
	LevelTopology Level = iota
	LevelEnterprise
	LevelSite
	LevelArea
	LevelProductionLine
	LevelWorkcell
	LevelMachine
)

var levelNames = [...]string{
	"Topology", "Enterprise", "Site", "Area", "ProductionLine", "Workcell", "Machine",
}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "Level?"
}

// DefName returns the part-definition simple name conventionally used for
// the level (the methodology's base library uses exactly these names).
func (l Level) DefName() string { return l.String() }

// Node is one element of the extracted equipment hierarchy.
type Node struct {
	Level    Level
	Name     string
	Element  *sema.Element
	Children []*Node
}

// Walk visits the node and its descendants depth-first.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// AtLevel returns all descendant nodes (including n) at the given level.
func (n *Node) AtLevel(l Level) []*Node {
	var out []*Node
	n.Walk(func(x *Node) {
		if x.Level == l {
			out = append(out, x)
		}
	})
	return out
}

// Extract locates the instantiated topology in the model and builds the
// equipment hierarchy. It returns an error when no topology part is
// instantiated.
func Extract(m *sema.Model) (*Node, error) {
	topoUsage := findUsageSpecializing(m, LevelTopology.DefName())
	if topoUsage == nil {
		return nil, fmt.Errorf("isa95: no part instantiating a %s definition found", LevelTopology.DefName())
	}
	root := &Node{Level: LevelTopology, Name: topoUsage.Name, Element: topoUsage}
	build(root, topoUsage)
	return root, nil
}

func findUsageSpecializing(m *sema.Model, defName string) *sema.Element {
	var found *sema.Element
	m.Root.Walk(func(e *sema.Element) bool {
		if found != nil {
			return false
		}
		if e.Kind == sema.KindPartUsage && !e.Ref && e.Type != nil && e.Type.SpecializesDef(defName) {
			found = e
			return false
		}
		return true
	})
	return found
}

// build attaches children for every hierarchy level found beneath parent.
// Levels may be nested directly or skip intermediate levels (the walk
// searches transitively until it hits the next hierarchy-typed part).
func build(parent *Node, e *sema.Element) {
	for _, member := range e.Members {
		if member.Kind != sema.KindPartUsage || member.Ref {
			continue
		}
		lvl, ok := levelOf(member)
		if !ok {
			// Not a hierarchy part (machine internals etc.): do not descend.
			continue
		}
		child := &Node{Level: lvl, Name: member.Name, Element: member}
		parent.Children = append(parent.Children, child)
		if lvl != LevelMachine {
			build(child, member)
		}
	}
}

func levelOf(e *sema.Element) (Level, bool) {
	if e.Type == nil {
		return 0, false
	}
	for l := LevelTopology; l <= LevelMachine; l++ {
		if e.Type.SpecializesDef(l.DefName()) {
			return l, true
		}
	}
	return 0, false
}

// MachineWorkcells returns machine name → enclosing workcell name for
// every Machine node in the hierarchy. Operations planners use it to
// cross-check a capability inventory against the modeled equipment
// hierarchy (a machine offered for binding must actually exist in the
// plant, in the workcell the inventory claims).
func MachineWorkcells(root *Node) map[string]string {
	out := map[string]string{}
	var walk func(n *Node, workcell string)
	walk = func(n *Node, workcell string) {
		if n.Level == LevelWorkcell {
			workcell = n.Name
		}
		if n.Level == LevelMachine {
			out[n.Name] = workcell
			return
		}
		for _, c := range n.Children {
			walk(c, workcell)
		}
	}
	walk(root, "")
	return out
}

// Problem is one methodology-compliance finding.
type Problem struct {
	Path string // qualified name of the offending element
	Msg  string
}

func (p Problem) String() string { return p.Path + ": " + p.Msg }

// Validate checks the extracted hierarchy against the methodology rules:
//   - the hierarchy contains at least one of each level down to Workcell;
//   - every Workcell contains at least one Machine;
//   - hierarchy levels are properly ordered (a child's level is strictly
//     deeper than its parent's);
//   - every Machine references a driver part ("ref part <driver>").
func Validate(root *Node) []Problem {
	var problems []Problem
	addf := func(e *sema.Element, format string, args ...any) {
		path := ""
		if e != nil {
			path = e.QualifiedName()
		}
		problems = append(problems, Problem{Path: path, Msg: fmt.Sprintf(format, args...)})
	}

	for l := LevelEnterprise; l <= LevelWorkcell; l++ {
		if len(root.AtLevel(l)) == 0 {
			addf(root.Element, "hierarchy has no %s", l)
		}
	}
	root.Walk(func(n *Node) {
		for _, c := range n.Children {
			if c.Level <= n.Level {
				addf(c.Element, "%s %q nested under %s %q violates ISA-95 ordering",
					c.Level, c.Name, n.Level, n.Name)
			}
		}
		if n.Level == LevelWorkcell && len(n.Children) == 0 {
			addf(n.Element, "workcell contains no machines")
		}
		if n.Level == LevelMachine {
			if !hasDriverRef(n.Element) {
				addf(n.Element, "machine does not reference a driver part")
			}
		}
	})
	return problems
}

func hasDriverRef(machine *sema.Element) bool {
	for _, m := range machine.Members {
		if m.Kind == sema.KindPartUsage && m.Ref {
			if m.Type != nil && m.Type.SpecializesDef("Driver") {
				return true
			}
			// Unresolved ref named like a driver instance still counts as a
			// reference; the core extractor reports it if it dangles.
			if m.Type == nil {
				return true
			}
		}
	}
	return false
}
