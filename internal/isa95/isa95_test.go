package isa95

import (
	"strings"
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
	"github.com/smartfactory/sysml2conf/internal/sysml/sema"
)

const base = `
package ISA95 {
	part def Topology;
	part def Enterprise;
	part def Site;
	part def Area;
	part def ProductionLine;
	part def Workcell { ref part Machine [*]; }
	abstract part def Machine;
	abstract part def Driver;
	abstract part def GenericDriver :> Driver;
}
`

func modelOf(t *testing.T, src string) *sema.Model {
	t.Helper()
	f, err := parser.ParseFile("t.sysml", base+src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sema.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const goodPlant = `
package P {
	import ISA95::*;
	part def Robot :> Machine;
	part def RobotDriver :> GenericDriver;
	part plant : Topology {
		part e : Enterprise {
			part s : Site {
				part a : Area {
					part line : ProductionLine {
						part wc1 : Workcell {
							part r1 : Robot { ref part rDriver; }
						}
						part wc2 : Workcell {
							part r2 : Robot { ref part rDriver; }
						}
					}
				}
			}
		}
	}
	part rDriver : RobotDriver;
}
`

func TestExtractHierarchy(t *testing.T) {
	m := modelOf(t, goodPlant)
	root, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	if root.Level != LevelTopology || root.Name != "plant" {
		t.Errorf("root = %v %s", root.Level, root.Name)
	}
	counts := map[Level]int{}
	root.Walk(func(n *Node) { counts[n.Level]++ })
	want := map[Level]int{
		LevelTopology: 1, LevelEnterprise: 1, LevelSite: 1, LevelArea: 1,
		LevelProductionLine: 1, LevelWorkcell: 2, LevelMachine: 2,
	}
	for lvl, n := range want {
		if counts[lvl] != n {
			t.Errorf("%s count = %d, want %d", lvl, counts[lvl], n)
		}
	}
}

func TestExtractNoTopology(t *testing.T) {
	m := modelOf(t, `package Empty { part def X; }`)
	if _, err := Extract(m); err == nil {
		t.Error("want error when no topology is instantiated")
	}
}

func TestValidateCleanPlant(t *testing.T) {
	m := modelOf(t, goodPlant)
	root, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	if problems := Validate(root); len(problems) != 0 {
		t.Errorf("problems = %v", problems)
	}
}

func TestValidateEmptyWorkcell(t *testing.T) {
	m := modelOf(t, `
package P {
	import ISA95::*;
	part plant : Topology {
		part e : Enterprise {
			part s : Site {
				part a : Area {
					part line : ProductionLine {
						part wc : Workcell;
					}
				}
			}
		}
	}
}
`)
	root, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(root)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Msg, "no machines") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems = %v, want empty-workcell finding", problems)
	}
}

func TestValidateMissingDriverRef(t *testing.T) {
	m := modelOf(t, `
package P {
	import ISA95::*;
	part def Robot :> Machine;
	part plant : Topology {
		part e : Enterprise {
			part s : Site {
				part a : Area {
					part line : ProductionLine {
						part wc : Workcell {
							part r : Robot;
						}
					}
				}
			}
		}
	}
}
`)
	root, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(root)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Msg, "driver") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems = %v, want missing-driver finding", problems)
	}
}

func TestValidateLevelOrdering(t *testing.T) {
	// A Site nested directly under a ProductionLine violates ordering.
	m := modelOf(t, `
package P {
	import ISA95::*;
	part def Robot :> Machine;
	part def RobotDriver :> GenericDriver;
	part plant : Topology {
		part e : Enterprise {
			part s : Site {
				part a : Area {
					part line : ProductionLine {
						part oops : Site;
						part wc : Workcell {
							part r : Robot { ref part rDriver; }
						}
					}
				}
			}
		}
	}
	part rDriver : RobotDriver;
}
`)
	root, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(root)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Msg, "ISA-95 ordering") {
			found = true
		}
	}
	if !found {
		t.Errorf("problems = %v, want ordering violation", problems)
	}
}

func TestAtLevelAndLevelNames(t *testing.T) {
	m := modelOf(t, goodPlant)
	root, _ := Extract(m)
	wcs := root.AtLevel(LevelWorkcell)
	if len(wcs) != 2 || wcs[0].Name != "wc1" || wcs[1].Name != "wc2" {
		var names []string
		for _, n := range wcs {
			names = append(names, n.Name)
		}
		t.Errorf("workcells = %v", names)
	}
	for l := LevelTopology; l <= LevelMachine; l++ {
		if l.String() == "Level?" {
			t.Errorf("level %d has no name", l)
		}
	}
}
