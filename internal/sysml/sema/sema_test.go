package sema

import (
	"strings"
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
)

// paperModel merges the paper's Codes 1-5 into one coherent model: the
// ISA-95 hierarchy, abstract Machine/Driver, the EMCO specializations, and
// the instantiated topology with redefinitions, binds and performs.
const paperModel = `
package ISA95 {
	part def Topology;
	part def Enterprise;
	part def Site;
	part def Area;
	part def ProductionLine;
	part def Workcell;
	abstract part def Machine {
		part def MachineData;
		part def MachineServices;
	}
	abstract part def Driver {
		part def DriverParameters;
		part def DriverVariables;
		part def DriverMethods;
	}
	abstract part def GenericDriver :> Driver;
	abstract part def MachineDriver :> Driver;
}

package EMCO {
	import ISA95::*;

	part def EMCODriver :> MachineDriver {
		part def EMCOParameters :> Driver::DriverParameters {
			attribute ip : String;
			attribute ip_port : Integer;
			attribute program_file_path : String;
		}
		part def EMCOVariables :> Driver::DriverVariables {
			port def EMCOVar {
				in attribute value : String;
				attribute varName : String;
				attribute varType : String;
			}
			part def AxesPositions;
			part def SystemStatus;
		}
		part def EMCOMethods :> Driver::DriverMethods {
			port def EMCOMethod {
				attribute description : String;
				out action operation {
					in arg : String;
					out result : Boolean;
				}
			}
		}
	}

	part def EMCOMillingMachine :> Machine {
		part def EMCOMachineData :> Machine::MachineData {
			part def AxesPositions {
				port actual_X_EMCOVar_conj : ~EMCODriver::EMCOVariables::EMCOVar;
			}
		}
		part def EMCOServices :> Machine::MachineServices {
			port is_ready_conj : ~EMCODriver::EMCOMethods::EMCOMethod;
		}
	}
}

package ICE {
	import ISA95::*;
	import EMCO::*;

	part ICETopology : Topology {
		part UniVR : Enterprise {
			part Verona : Site {
				part ICELab : Area {
					part ICEProductionLine : ProductionLine {
						part workCell02 : Workcell {
							part emco : EMCOMillingMachine {
								ref part emcoDriver;
								part emcoMachineData : EMCOMillingMachine::EMCOMachineData {
									part emcoAxesPosition : EMCOMillingMachine::EMCOMachineData::AxesPositions {
										attribute actualX : Double;
										bind actual_X_EMCOVar_conj.value = actualX;
									}
								}
								part emcoServices : EMCOMillingMachine::EMCOServices {
									action isReady { out ready : Boolean; }
								}
							}
						}
					}
				}
			}
		}
	}

	part emcoDriver : EMCODriver {
		part emcoParameters : EMCODriver::EMCOParameters {
			:>> ip = '10.197.12.11';
			:>> ip_port = 5557;
			:>> program_file_path = 'path/program/file';
		}
		part emcoVariables : EMCODriver::EMCOVariables {
			part emcoAxesPositions : EMCODriver::EMCOVariables::AxesPositions {
				attribute actualX : Double;
				port pp_actual_X_EMCOVar : EMCODriver::EMCOVariables::EMCOVar;
				bind pp_actual_X_EMCOVar.value = actualX;
			}
		}
		part emcoMethods : EMCODriver::EMCOMethods {
			port pp_is_ready_EMCOMthd : EMCODriver::EMCOMethods::EMCOMethod;
			action call_is_ready {
				out ready : Boolean;
				perform pp_is_ready_EMCOMthd.operation {
					out ready = call_is_ready.ready;
				}
			}
		}
	}
}
`

func resolveOK(t *testing.T, src string) *Model {
	t.Helper()
	f, err := parser.ParseFile("test.sysml", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Resolve(f)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return m
}

func resolveErr(t *testing.T, src string) DiagnosticList {
	t.Helper()
	f, err := parser.ParseFile("test.sysml", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Resolve(f)
	if err == nil {
		t.Fatalf("want resolution error, got none (diags: %v)", m.Diags)
	}
	return m.Diags
}

func TestResolvePaperModel(t *testing.T) {
	m := resolveOK(t, paperModel)

	emcoDriver := m.FindDef("EMCODriver")
	if emcoDriver == nil {
		t.Fatal("EMCODriver not resolved")
	}
	supers := emcoDriver.AllSupers()
	var names []string
	for _, s := range supers {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "MachineDriver") || !strings.Contains(joined, "Driver") {
		t.Errorf("EMCODriver supers = %v, want MachineDriver and Driver", names)
	}

	// The instantiated emco part must be typed by EMCOMillingMachine which
	// transitively specializes the abstract Machine.
	emco := m.FindUsage("emco")
	if emco == nil || emco.Type == nil {
		t.Fatal("emco usage or its type missing")
	}
	if !emco.Type.SpecializesDef("Machine") {
		t.Error("emco's type does not specialize Machine")
	}
}

func TestInheritedMembersVisible(t *testing.T) {
	m := resolveOK(t, paperModel)
	params := m.FindDef("EMCOParameters")
	if params == nil {
		t.Fatal("EMCOParameters missing")
	}
	if params.InheritedMember("ip") == nil {
		t.Error("own member ip not found")
	}
	// EffectiveMembers must include the three declared attributes.
	var attrs int
	for _, mm := range params.EffectiveMembers() {
		if mm.Kind == KindAttributeUsage {
			attrs++
		}
	}
	if attrs != 3 {
		t.Errorf("EMCOParameters has %d attributes, want 3", attrs)
	}
}

func TestRedefinitionsResolveToInheritedFeatures(t *testing.T) {
	m := resolveOK(t, paperModel)
	emcoParams := m.FindUsage("emcoParameters")
	if emcoParams == nil {
		t.Fatal("emcoParameters not found")
	}
	var redefNames []string
	for _, mm := range emcoParams.Members {
		for _, rd := range mm.Redefines {
			redefNames = append(redefNames, rd.Name)
		}
	}
	want := []string{"ip", "ip_port", "program_file_path"}
	if len(redefNames) != len(want) {
		t.Fatalf("redefined features = %v, want %v", redefNames, want)
	}
	for i, w := range want {
		if redefNames[i] != w {
			t.Errorf("redef[%d] = %q, want %q", i, redefNames[i], w)
		}
	}
}

func TestBindEndpointsResolve(t *testing.T) {
	m := resolveOK(t, paperModel)
	var binds []*Element
	m.Root.Walk(func(e *Element) bool {
		if e.Kind == KindBind {
			binds = append(binds, e)
		}
		return true
	})
	if len(binds) != 2 {
		t.Fatalf("got %d binds, want 2", len(binds))
	}
	for _, b := range binds {
		if b.BindLeft == nil || b.BindRight == nil {
			t.Errorf("bind %s=%s did not resolve", b.LeftPath, b.RightPath)
			continue
		}
		if b.BindLeft.Name != "value" {
			t.Errorf("bind left resolved to %s, want attribute value", b.BindLeft)
		}
		if b.BindRight.Name != "actualX" {
			t.Errorf("bind right resolved to %s, want actualX", b.BindRight)
		}
	}
}

func TestConjugatedPortDirectionFlips(t *testing.T) {
	m := resolveOK(t, paperModel)
	conj := m.FindUsage("actual_X_EMCOVar_conj")
	if conj == nil {
		t.Fatal("conjugated port not found")
	}
	if !conj.Conjugated {
		t.Fatal("port should be conjugated")
	}
	valueAttr := conj.Type.InheritedMember("value")
	if valueAttr == nil {
		t.Fatal("value attribute not visible through port type")
	}
	if valueAttr.Direction != ast.DirIn {
		t.Fatalf("declared direction = %v, want in", valueAttr.Direction)
	}
	if got := EffectiveDirection(valueAttr.Direction, conj.Conjugated); got != ast.DirOut {
		t.Errorf("effective direction through conjugated port = %v, want out", got)
	}
	plain := m.FindUsage("pp_actual_X_EMCOVar")
	if plain == nil || plain.Conjugated {
		t.Fatal("non-conjugated port missing or wrongly conjugated")
	}
	if got := EffectiveDirection(valueAttr.Direction, plain.Conjugated); got != ast.DirIn {
		t.Errorf("effective direction through plain port = %v, want in", got)
	}
}

func TestPerformTargetResolves(t *testing.T) {
	m := resolveOK(t, paperModel)
	var performs []*Element
	m.Root.Walk(func(e *Element) bool {
		if e.Kind == KindPerform {
			performs = append(performs, e)
		}
		return true
	})
	if len(performs) != 1 {
		t.Fatalf("got %d performs, want 1", len(performs))
	}
	if performs[0].PerformTarget == nil || performs[0].PerformTarget.Name != "operation" {
		t.Errorf("perform target = %v, want action operation", performs[0].PerformTarget)
	}
}

func TestAbstractInstantiationRejected(t *testing.T) {
	diags := resolveErr(t, `
abstract part def Machine;
part m : Machine;
`)
	found := false
	for _, d := range diags {
		if d.Severity == Err && strings.Contains(d.Msg, "abstract") {
			found = true
		}
	}
	if !found {
		t.Errorf("no abstract-instantiation error in %v", diags)
	}
}

func TestAbstractRefAllowed(t *testing.T) {
	resolveOK(t, `
abstract part def Machine;
part def Workcell {
	ref part Machine [*];
}
`)
}

func TestSpecializationCycleDetected(t *testing.T) {
	diags := resolveErr(t, `
part def A :> B;
part def B :> C;
part def C :> A;
`)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cycle error in %v", diags)
	}
}

func TestUnresolvedTypeReported(t *testing.T) {
	diags := resolveErr(t, `part x : NoSuchDef;`)
	if !strings.Contains(diags.Error(), "cannot resolve type") {
		t.Errorf("diags = %v", diags)
	}
}

func TestUnresolvedSpecializationReported(t *testing.T) {
	diags := resolveErr(t, `part def X :> Missing;`)
	if !strings.Contains(diags.Error(), "cannot resolve specialization") {
		t.Errorf("diags = %v", diags)
	}
}

func TestDuplicateMemberReported(t *testing.T) {
	diags := resolveErr(t, `
part def P {
	attribute a : String;
	attribute a : Integer;
}
`)
	if !strings.Contains(diags.Error(), "duplicate") {
		t.Errorf("diags = %v", diags)
	}
}

func TestInvalidMultiplicityReported(t *testing.T) {
	diags := resolveErr(t, `
part def P;
part def W { ref part p : P [5..2]; }
`)
	if !strings.Contains(diags.Error(), "multiplicity") {
		t.Errorf("diags = %v", diags)
	}
}

func TestValueTypeMismatchWarns(t *testing.T) {
	f, err := parser.ParseFile("t.sysml", `
part p {
	attribute n : Integer = 'not a number';
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Resolve(f)
	if err != nil {
		t.Fatalf("mismatch should be a warning, not error: %v", err)
	}
	warned := false
	for _, d := range m.Diags {
		if d.Severity == Warning && strings.Contains(d.Msg, "does not match") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no type-mismatch warning in %v", m.Diags)
	}
}

func TestBuiltinScalarsInScope(t *testing.T) {
	m := resolveOK(t, `
part p {
	attribute a : String;
	attribute b : Integer;
	attribute c : Real;
	attribute d : Double;
	attribute e : Boolean;
	attribute f : Natural;
}
`)
	p := m.FindUsage("p")
	for _, mm := range p.Members {
		if mm.Type == nil || mm.Type.Kind != KindBuiltin {
			t.Errorf("attribute %s type = %v, want builtin", mm.Name, mm.Type)
		}
	}
}

func TestQualifiedLookupAndImports(t *testing.T) {
	m := resolveOK(t, `
package Lib {
	part def Widget {
		part def Inner;
	}
}
package App {
	import Lib::*;
	part w : Widget;
	part i : Widget::Inner;
}
`)
	w := m.FindUsage("w")
	if w.Type == nil || w.Type.Name != "Widget" {
		t.Errorf("w type = %v", w.Type)
	}
	i := m.FindUsage("i")
	if i.Type == nil || i.Type.Name != "Inner" {
		t.Errorf("i type = %v", i.Type)
	}
	if got := m.FindByQualifiedName("Lib::Widget::Inner"); got == nil || got.Name != "Inner" {
		t.Errorf("FindByQualifiedName = %v", got)
	}
}

func TestUsagesTypedBy(t *testing.T) {
	m := resolveOK(t, paperModel)
	machine := m.FindByQualifiedName("ISA95::Machine")
	if machine == nil {
		t.Fatal("ISA95::Machine missing")
	}
	usages := m.UsagesTypedBy(machine)
	if len(usages) != 1 || usages[0].Name != "emco" {
		var names []string
		for _, u := range usages {
			names = append(names, u.Name)
		}
		t.Errorf("usages typed by Machine = %v, want [emco]", names)
	}
}

func TestQualifiedNameRendering(t *testing.T) {
	m := resolveOK(t, paperModel)
	e := m.FindUsage("workCell02")
	want := "ICE::ICETopology::UniVR::Verona::ICELab::ICEProductionLine::workCell02"
	if got := e.QualifiedName(); got != want {
		t.Errorf("QualifiedName = %q, want %q", got, want)
	}
}

func TestEffectiveMembersShadowing(t *testing.T) {
	m := resolveOK(t, `
part def Base {
	attribute x : String;
	attribute y : String;
}
part def Derived :> Base {
	attribute x : Integer;
}
`)
	d := m.FindDef("Derived")
	var xCount, total int
	for _, mm := range d.EffectiveMembers() {
		if mm.Name == "x" {
			xCount++
			if mm.Type.Name != "Integer" {
				t.Errorf("shadowed x has type %v, want Integer", mm.Type)
			}
		}
		total++
	}
	if xCount != 1 {
		t.Errorf("x appears %d times in effective members, want 1 (shadowed)", xCount)
	}
	if total != 2 {
		t.Errorf("effective member count = %d, want 2 (x, y)", total)
	}
}
