package sema

import (
	"fmt"
	"strings"

	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warning diagnostics do not fail resolution.
	Warning Severity = iota
	// Err diagnostics make Resolve return an error.
	Err
)

func (s Severity) String() string {
	if s == Err {
		return "error"
	}
	return "warning"
}

// Diagnostic is one resolution finding bound to a source position.
type Diagnostic struct {
	Severity Severity
	Pos      token.Position
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Msg)
}

// DiagnosticList aggregates diagnostics and implements error.
type DiagnosticList []Diagnostic

// Error renders up to ten diagnostics.
func (l DiagnosticList) Error() string {
	var b strings.Builder
	for i, d := range l {
		if i == 10 {
			fmt.Fprintf(&b, "\n... and %d more", len(l)-10)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
	}
	if b.Len() == 0 {
		return "no diagnostics"
	}
	return b.String()
}

// Errors returns only the Err-severity diagnostics.
func (l DiagnosticList) Errors() DiagnosticList {
	var out DiagnosticList
	for _, d := range l {
		if d.Severity == Err {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any diagnostic is an error.
func (l DiagnosticList) HasErrors() bool { return len(l.Errors()) > 0 }
