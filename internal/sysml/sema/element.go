// Package sema resolves a parsed SysML v2 syntax tree into a typed element
// graph: names are bound, specializations are linked and checked for cycles,
// inherited features are made visible, redefinitions and binding connectors
// are resolved, and methodology-level well-formedness rules are enforced
// (e.g. abstract definitions cannot be instantiated directly).
package sema

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// ElemKind classifies resolved elements.
type ElemKind int

const (
	KindPackage ElemKind = iota
	KindPartDef
	KindAttributeDef
	KindPortDef
	KindActionDef
	KindInterfaceDef
	KindConnectionDef
	KindPartUsage
	KindAttributeUsage
	KindPortUsage
	KindActionUsage
	KindInterfaceUsage
	KindConnectionUsage
	KindEndUsage
	KindBind
	KindConnect
	KindPerform
	KindBuiltin // builtin scalar type (String, Integer, ...)
)

var elemKindNames = [...]string{
	"package", "part def", "attribute def", "port def", "action def",
	"interface def", "connection def", "part", "attribute", "port",
	"action", "interface", "connection", "end", "bind", "connect",
	"perform", "builtin",
}

func (k ElemKind) String() string {
	if int(k) < len(elemKindNames) {
		return elemKindNames[k]
	}
	return "element?"
}

// IsDef reports whether the kind is a definition (including builtins).
func (k ElemKind) IsDef() bool {
	switch k {
	case KindPartDef, KindAttributeDef, KindPortDef, KindActionDef,
		KindInterfaceDef, KindConnectionDef, KindBuiltin:
		return true
	}
	return false
}

// IsUsage reports whether the kind is a usage.
func (k ElemKind) IsUsage() bool {
	switch k {
	case KindPartUsage, KindAttributeUsage, KindPortUsage, KindActionUsage,
		KindInterfaceUsage, KindConnectionUsage, KindEndUsage:
		return true
	}
	return false
}

// Element is a node of the resolved model graph.
type Element struct {
	Kind  ElemKind
	Name  string
	Owner *Element

	// Members in declaration order and by name.
	Members []*Element
	byName  map[string]*Element

	// Syntax provenance (nil for builtins).
	Def   *ast.Definition
	Usage *ast.Usage
	Pkg   *ast.Package

	// Definitions.
	Abstract bool
	Supers   []*Element // resolved ":>" targets

	// Usages.
	Type *Element // resolved type definition (may be nil)
	// RefTarget is the referenced usage for "ref part x;" members: the
	// ref is a transparent alias, so feature paths may step through it
	// into the referenced part's members.
	RefTarget    *Element
	Conjugated   bool // usage typed by "~T"
	Direction    ast.Direction
	Ref          bool
	Multiplicity *ast.Multiplicity
	Redefines    []*Element // resolved redefined features
	Subsets      []*Element
	Value        ast.Expr // declared value, if any

	// Connectors.
	BindLeft, BindRight        *Element
	ConnectFrom, ConnectTo     *Element
	PerformTarget              *Element
	LeftPath, RightPath        *ast.FeaturePath
	FromPath, ToPath, PerfPath *ast.FeaturePath

	// Imports owned by this element (packages mostly).
	imports []*importRec

	// allSupers memoizes the transitive specialization closure. It is
	// frozen by the resolver once every ":>" target is linked (Supers
	// never changes afterwards); until then AllSupers computes fresh.
	allSupers    []*Element
	supersFrozen bool
}

type importRec struct {
	path      *ast.QualifiedName
	wildcard  bool
	recursive bool
	target    *Element // resolved lazily
	private   bool
}

// Pos returns the element's source position (zero for builtins).
func (e *Element) Pos() token.Position {
	switch {
	case e.Def != nil:
		return e.Def.Position
	case e.Usage != nil:
		return e.Usage.Position
	case e.Pkg != nil:
		return e.Pkg.Position
	case e.LeftPath != nil:
		return e.LeftPath.Position
	case e.FromPath != nil:
		return e.FromPath.Position
	case e.PerfPath != nil:
		return e.PerfPath.Position
	}
	return token.Position{}
}

// QualifiedName returns the "::"-joined path from the root to this element.
func (e *Element) QualifiedName() string {
	var parts []string
	for x := e; x != nil && x.Name != ""; x = x.Owner {
		parts = append(parts, x.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "::")
}

// Member returns the directly declared member with the given name, or nil.
func (e *Element) Member(name string) *Element {
	if e == nil || e.byName == nil {
		return nil
	}
	return e.byName[name]
}

// addMember registers m as a member of e. Duplicate names are reported by
// the resolver; the first declaration wins in the name table.
func (e *Element) addMember(m *Element) (dup bool) {
	m.Owner = e
	e.Members = append(e.Members, m)
	if m.Name == "" {
		return false
	}
	if e.byName == nil {
		e.byName = make(map[string]*Element)
	}
	if _, exists := e.byName[m.Name]; exists {
		return true
	}
	e.byName[m.Name] = m
	return false
}

// AllSupers returns the transitive specialization closure in BFS order,
// excluding e itself. Safe on cyclic input (visits each def once). The
// closure is served from a per-element cache once resolution has linked
// all specializations — the walk is on the hot path of every inherited
// member lookup during extraction.
func (e *Element) AllSupers() []*Element {
	if e.supersFrozen {
		return e.allSupers
	}
	return e.computeAllSupers()
}

// freezeSupers caches the closure; the resolver calls it on every element
// after the header pass, when Supers is final.
func (e *Element) freezeSupers() {
	e.allSupers = e.computeAllSupers()
	e.supersFrozen = true
}

func (e *Element) computeAllSupers() []*Element {
	var out []*Element
	seen := map[*Element]bool{e: true}
	queue := append([]*Element(nil), e.Supers...)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == nil || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
		queue = append(queue, s.Supers...)
	}
	return out
}

// SpecializesDef reports whether e (a definition) transitively specializes
// the definition named defName (matched on simple name).
func (e *Element) SpecializesDef(defName string) bool {
	if e.Name == defName {
		return true
	}
	for _, s := range e.AllSupers() {
		if s.Name == defName {
			return true
		}
	}
	return false
}

// InheritedMember looks up a feature by name on e and, failing that, on its
// specialization closure. Used to resolve redefinitions and feature paths
// through typed usages.
func (e *Element) InheritedMember(name string) *Element {
	if m := e.Member(name); m != nil {
		return m
	}
	for _, s := range e.AllSupers() {
		if m := s.Member(name); m != nil {
			return m
		}
	}
	return nil
}

// EffectiveMembers returns e's members plus inherited members from the
// specialization closure that are not shadowed (by name) by a nearer
// declaration. Order: own members first, then supers in BFS order.
func (e *Element) EffectiveMembers() []*Element {
	var out []*Element
	seen := map[string]bool{}
	appendNew := func(ms []*Element) {
		for _, m := range ms {
			if m.Name != "" && seen[m.Name] {
				continue
			}
			if m.Name != "" {
				seen[m.Name] = true
			}
			out = append(out, m)
		}
	}
	appendNew(e.Members)
	for _, s := range e.AllSupers() {
		appendNew(s.Members)
	}
	return out
}

// EffectiveDirection returns the direction of a feature as seen through a
// possibly conjugated usage: conjugation flips in and out.
func EffectiveDirection(d ast.Direction, conjugated bool) ast.Direction {
	if !conjugated {
		return d
	}
	switch d {
	case ast.DirIn:
		return ast.DirOut
	case ast.DirOut:
		return ast.DirIn
	}
	return d
}

// TypeOrSelf returns the usage's type if resolved, otherwise nil for defs
// the element itself when it is a definition.
func (e *Element) TypeOrSelf() *Element {
	if e.Kind.IsDef() {
		return e
	}
	return e.Type
}

// UsagesOfKind returns direct members of the given kind.
func (e *Element) UsagesOfKind(k ElemKind) []*Element {
	var out []*Element
	for _, m := range e.Members {
		if m.Kind == k {
			out = append(out, m)
		}
	}
	return out
}

// Walk visits e and all transitive members depth-first.
func (e *Element) Walk(fn func(*Element) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, m := range e.Members {
		m.Walk(fn)
	}
}

// String renders "kind name" for diagnostics.
func (e *Element) String() string {
	if e == nil {
		return "<nil element>"
	}
	if e.Name == "" {
		return fmt.Sprintf("<anonymous %s>", e.Kind)
	}
	return fmt.Sprintf("%s %s", e.Kind, e.Name)
}

// SortedMemberNames returns the names of direct members, sorted. Useful in
// tests and diagnostics.
func (e *Element) SortedMemberNames() []string {
	var names []string
	for _, m := range e.Members {
		if m.Name != "" {
			names = append(names, m.Name)
		}
	}
	sort.Strings(names)
	return names
}
