package sema

// Builtin scalar types implicitly in scope, mirroring the relevant subset of
// the SysML v2 ScalarValues / standard library that factory models use for
// attribute typing.
var builtinTypeNames = []string{
	"String",
	"Boolean",
	"Integer",
	"Natural",
	"Positive",
	"Real",
	"Double",
	"Float",
	"Rational",
	"Number",
	"ScalarValue",
	"Anything",
}

// newBuiltinScope creates the implicit root library package holding the
// builtin scalar definitions.
func newBuiltinScope() *Element {
	lib := &Element{Kind: KindPackage, Name: "ScalarValues"}
	for _, n := range builtinTypeNames {
		lib.addMember(&Element{Kind: KindBuiltin, Name: n})
	}
	return lib
}

// IsBuiltinType reports whether name is one of the implicit scalar types.
func IsBuiltinType(name string) bool {
	for _, n := range builtinTypeNames {
		if n == name {
			return true
		}
	}
	return false
}
