package sema

import (
	"strings"
	"testing"
)

const channelBase = `
part def D {
	port def V { in attribute value : Anything; }
	port def W { in attribute value : Anything; }
}
`

func TestConnectCompatiblePorts(t *testing.T) {
	m := resolveOK(t, channelBase+`
part sys {
	part a { port p : D::V; }
	part b { port q : ~D::V; }
	connect a.p to b.q;
}
`)
	for _, d := range m.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestConnectDifferentPortDefsWarns(t *testing.T) {
	m := resolveOK(t, channelBase+`
part sys {
	part a { port p : D::V; }
	part b { port q : ~D::W; }
	connect a.p to b.q;
}
`)
	found := false
	for _, d := range m.Diags {
		if d.Severity == Warning && strings.Contains(d.Msg, "different definitions") {
			found = true
		}
	}
	if !found {
		t.Errorf("no mixed-port-def warning in %v", m.Diags)
	}
}

func TestConnectSameConjugationWarns(t *testing.T) {
	m := resolveOK(t, channelBase+`
part sys {
	part a { port p : D::V; }
	part b { port q : D::V; }
	connect a.p to b.q;
}
`)
	found := false
	for _, d := range m.Diags {
		if d.Severity == Warning && strings.Contains(d.Msg, "conjugated") {
			found = true
		}
	}
	if !found {
		t.Errorf("no conjugation warning in %v", m.Diags)
	}
}

func TestRefTransparentFeaturePaths(t *testing.T) {
	// A connect inside the machine steps through "ref part drv;" into the
	// referenced driver instance's members — the paper's Code 4/5 linkage.
	m := resolveOK(t, channelBase+`
part def MachinePart;
part machine : MachinePart {
	ref part drv;
	port local : ~D::V;
	connect drv.inner.p to local;
}
part drv : D {
	part inner {
		port p : D::V;
	}
}
`)
	for _, d := range m.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	ref := m.FindUsage("machine").Member("drv")
	if ref == nil || ref.RefTarget == nil {
		t.Fatal("ref target not resolved")
	}
	if ref.RefTarget.Name != "drv" || !ref.RefTarget.Kind.IsUsage() || ref.RefTarget.Ref {
		t.Errorf("ref target = %v", ref.RefTarget)
	}
}

func TestInterfaceTypedConnect(t *testing.T) {
	m := resolveOK(t, channelBase+`
interface def Channel {
	end supplier : D::V;
	end consumer : ~D::V;
}
part sys {
	part a { port p : D::V; }
	part b { port q : ~D::V; }
	interface : Channel connect a.p to b.q;
}
`)
	var connects []*Element
	m.Root.Walk(func(e *Element) bool {
		if e.Kind == KindConnect {
			connects = append(connects, e)
		}
		return true
	})
	if len(connects) != 1 {
		t.Fatalf("connects = %d", len(connects))
	}
	c := connects[0]
	if c.ConnectFrom == nil || c.ConnectTo == nil {
		t.Error("typed connect endpoints unresolved")
	}
}
