package sema

import (
	"strings"
	"testing"
)

func TestSubsetsResolves(t *testing.T) {
	m := resolveOK(t, `
part def Fleet {
	ref part vehicles [*];
}
part def AGV;
part plant : Fleet {
	part agv1 : AGV subsets vehicles;
	part agv2 : AGV subsets vehicles;
}
`)
	agv1 := m.FindUsage("agv1")
	if len(agv1.Subsets) != 1 || agv1.Subsets[0].Name != "vehicles" {
		t.Errorf("subsets = %v", agv1.Subsets)
	}
}

func TestUnresolvedSubsetsReported(t *testing.T) {
	diags := resolveErr(t, `
part p {
	part q subsets missing;
}
`)
	if !strings.Contains(diags.Error(), "subsetted") {
		t.Errorf("diags = %v", diags)
	}
}

func TestLongFormSpecializesAndRedefines(t *testing.T) {
	m := resolveOK(t, `
part def Base { attribute x : Integer; }
part def Derived specializes Base;
part d : Derived {
	attribute y : Integer redefines x = 5;
}
`)
	derived := m.FindDef("Derived")
	if len(derived.Supers) != 1 || derived.Supers[0].Name != "Base" {
		t.Errorf("supers = %v", derived.Supers)
	}
	var redef *Element
	m.Root.Walk(func(e *Element) bool {
		if e.Name == "y" {
			redef = e
		}
		return true
	})
	if redef == nil || len(redef.Redefines) != 1 || redef.Redefines[0].Name != "x" {
		t.Fatalf("redefines = %+v", redef)
	}
}

func TestRecursiveImport(t *testing.T) {
	m := resolveOK(t, `
package Deep {
	package Inner {
		part def Hidden;
	}
}
package App {
	import Deep::**;
	part h : Hidden;
}
`)
	h := m.FindUsage("h")
	if h.Type == nil || h.Type.Name != "Hidden" {
		t.Errorf("recursive import failed: type = %v", h.Type)
	}
}

func TestNonWildcardImport(t *testing.T) {
	m := resolveOK(t, `
package Lib {
	part def Widget;
}
package App {
	import Lib;
	part w : Lib::Widget;
}
`)
	w := m.FindUsage("w")
	if w.Type == nil || w.Type.Name != "Widget" {
		t.Errorf("type = %v", w.Type)
	}
}

func TestMultipleSpecialization(t *testing.T) {
	m := resolveOK(t, `
part def Sensing { attribute range : Double; }
part def Moving { attribute speed : Double; }
part def Robot :> Sensing, Moving;
part r : Robot;
`)
	robot := m.FindDef("Robot")
	if len(robot.Supers) != 2 {
		t.Fatalf("supers = %v", robot.Supers)
	}
	if robot.InheritedMember("range") == nil || robot.InheritedMember("speed") == nil {
		t.Error("diamond members not visible")
	}
	// Effective members carry both inherited attributes.
	names := map[string]bool{}
	for _, mm := range robot.EffectiveMembers() {
		names[mm.Name] = true
	}
	if !names["range"] || !names["speed"] {
		t.Errorf("effective members = %v", names)
	}
}

func TestDiamondSpecializationNoDoubleVisit(t *testing.T) {
	m := resolveOK(t, `
part def Top { attribute t : Integer; }
part def Left :> Top;
part def Right :> Top;
part def Bottom :> Left, Right;
`)
	bottom := m.FindDef("Bottom")
	supers := bottom.AllSupers()
	if len(supers) != 3 { // Left, Right, Top (once)
		var names []string
		for _, s := range supers {
			names = append(names, s.Name)
		}
		t.Errorf("supers = %v", names)
	}
	count := 0
	for _, mm := range bottom.EffectiveMembers() {
		if mm.Name == "t" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("attribute t appears %d times", count)
	}
}

func TestSelfSpecializationCycle(t *testing.T) {
	diags := resolveErr(t, `part def Ouro :> Ouro;`)
	if !strings.Contains(diags.Error(), "cycle") {
		t.Errorf("diags = %v", diags)
	}
}

func TestShadowingInnerScopeWins(t *testing.T) {
	m := resolveOK(t, `
part def T1;
package P {
	part def T1 { attribute marker : String; }
	part x : T1;
}
`)
	x := m.FindUsage("x")
	if x.Type == nil || x.Type.Member("marker") == nil {
		t.Error("inner T1 should shadow the outer one")
	}
}
