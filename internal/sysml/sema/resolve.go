package sema

import (
	"fmt"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// Model is the resolved element graph for a set of compilation units.
type Model struct {
	// Root is a synthetic namespace containing every top-level member of
	// every file, plus the implicit builtin library.
	Root *Element
	// Diags collects warnings and errors found during resolution.
	Diags DiagnosticList

	files []*ast.File

	// byName indexes elements by simple name (built lazily; resolution
	// must be complete before first use).
	byName map[string][]*Element
}

// index returns the name index, building it on first use.
func (m *Model) index() map[string][]*Element {
	if m.byName == nil {
		m.byName = map[string][]*Element{}
		m.Root.Walk(func(e *Element) bool {
			if e.Name != "" {
				m.byName[e.Name] = append(m.byName[e.Name], e)
			}
			return true
		})
	}
	return m.byName
}

// ElementsNamed returns every element with the given simple name, in
// model (depth-first) order.
func (m *Model) ElementsNamed(name string) []*Element {
	return m.index()[name]
}

// Resolve builds and resolves the element graph for the given files.
// The returned Model is usable even when err != nil (partial resolution);
// err is the DiagnosticList filtered to errors.
func Resolve(files ...*ast.File) (*Model, error) {
	r := &resolver{model: &Model{Root: &Element{Kind: KindPackage}, files: files}}
	r.model.Root.addMember(newBuiltinScope())
	for _, f := range files {
		for _, m := range f.Members {
			if e := r.build(m); e != nil {
				if r.model.Root.addMember(e) {
					r.errorf(e.Pos(), "duplicate top-level name %q", e.Name)
				}
			}
		}
	}
	r.resolveAll(r.model.Root)
	r.checkCycles()
	r.checkAll(r.model.Root)
	if errs := r.model.Diags.Errors(); len(errs) > 0 {
		return r.model, errs
	}
	return r.model, nil
}

// MustResolve resolves or panics; for tests and embedded known-good models.
func MustResolve(files ...*ast.File) *Model {
	m, err := Resolve(files...)
	if err != nil {
		panic(fmt.Sprintf("sema.MustResolve: %v", err))
	}
	return m
}

type resolver struct {
	model *Model
}

func (r *resolver) errorf(pos token.Position, format string, args ...any) {
	r.model.Diags = append(r.model.Diags, Diagnostic{Severity: Err, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (r *resolver) warnf(pos token.Position, format string, args ...any) {
	r.model.Diags = append(r.model.Diags, Diagnostic{Severity: Warning, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Pass 1: build element tree

func (r *resolver) build(m ast.Member) *Element {
	switch n := m.(type) {
	case *ast.Package:
		e := &Element{Kind: KindPackage, Name: n.Name, Pkg: n}
		r.buildMembers(e, n.Members)
		return e
	case *ast.Definition:
		e := &Element{Kind: defElemKind(n.Kind), Name: n.Name, Def: n, Abstract: n.Abstract}
		r.buildMembers(e, n.Members)
		return e
	case *ast.Usage:
		e := &Element{
			Kind:         usageElemKind(n.Kind),
			Name:         n.Name,
			Usage:        n,
			Direction:    n.Direction,
			Ref:          n.Ref,
			Abstract:     n.Abstract,
			Multiplicity: n.Multiplicity,
			Value:        n.Value,
		}
		r.buildMembers(e, n.Members)
		return e
	case *ast.Bind:
		return &Element{Kind: KindBind, LeftPath: n.Left, RightPath: n.Right}
	case *ast.Connect:
		return &Element{Kind: KindConnect, Name: n.Name, FromPath: n.From, ToPath: n.To}
	case *ast.Perform:
		e := &Element{Kind: KindPerform, PerfPath: n.Target}
		r.buildMembers(e, n.Members)
		return e
	case *ast.Import:
		// Imports are registered on the owner by buildMembers.
		return nil
	case *ast.Doc, *ast.Comment:
		return nil
	default:
		return nil
	}
}

func (r *resolver) buildMembers(owner *Element, members []ast.Member) {
	for _, m := range members {
		if imp, ok := m.(*ast.Import); ok {
			owner.imports = append(owner.imports, &importRec{
				path: imp.Path, wildcard: imp.Wildcard, recursive: imp.Recursive, private: imp.Private,
			})
			continue
		}
		e := r.build(m)
		if e == nil {
			continue
		}
		if owner.addMember(e) {
			r.errorf(e.Pos(), "duplicate member name %q in %s", e.Name, owner)
		}
	}
}

func defElemKind(k ast.DefKind) ElemKind {
	switch k {
	case ast.DefPart:
		return KindPartDef
	case ast.DefAttribute:
		return KindAttributeDef
	case ast.DefPort:
		return KindPortDef
	case ast.DefAction:
		return KindActionDef
	case ast.DefInterface:
		return KindInterfaceDef
	case ast.DefConnection:
		return KindConnectionDef
	case ast.DefItem:
		// Items (things that flow: workpieces, pallets) are structurally
		// part-like for extraction and counting purposes.
		return KindPartDef
	}
	return KindPartDef
}

func usageElemKind(k ast.UsageKind) ElemKind {
	switch k {
	case ast.UsePart:
		return KindPartUsage
	case ast.UseAttribute:
		return KindAttributeUsage
	case ast.UsePort:
		return KindPortUsage
	case ast.UseAction:
		return KindActionUsage
	case ast.UseInterface:
		return KindInterfaceUsage
	case ast.UseConnection:
		return KindConnectionUsage
	case ast.UseEnd:
		return KindEndUsage
	case ast.UseItem:
		return KindPartUsage
	}
	return KindPartUsage
}

// ---------------------------------------------------------------------------
// Name lookup

// lookupLexical resolves a simple name from a starting element outward:
// the element's own members, inherited members through its type or supers,
// the element itself (self-name), then enclosing scopes, then imports, and
// finally the builtin library.
func (r *resolver) lookupLexical(from *Element, name string) *Element {
	return r.lookupLexicalExcluding(from, name, nil)
}

// lookupLexicalExcluding is lookupLexical with one element masked out —
// needed when resolving "ref part x;" so the ref does not resolve to
// itself and shadows the referenced part in an outer scope.
func (r *resolver) lookupLexicalExcluding(from *Element, name string, exclude *Element) *Element {
	for scope := from; scope != nil; scope = scope.Owner {
		if m := scope.Member(name); m != nil && m != exclude {
			return m
		}
		if scope.Kind.IsDef() {
			if m := scope.InheritedMember(name); m != nil {
				return m
			}
		}
		if scope.Type != nil {
			if m := scope.Type.InheritedMember(name); m != nil {
				return m
			}
		}
		if scope.Name == name {
			return scope
		}
		if m := r.lookupImports(scope, name); m != nil {
			return m
		}
	}
	// Builtins.
	if lib := r.model.Root.Member("ScalarValues"); lib != nil {
		if m := lib.Member(name); m != nil {
			return m
		}
	}
	return nil
}

func (r *resolver) lookupImports(scope *Element, name string) *Element {
	for _, imp := range scope.imports {
		if imp.target == nil {
			imp.target = r.resolveQualified(scope.Owner, imp.path)
		}
		t := imp.target
		if t == nil {
			continue
		}
		if imp.wildcard {
			if m := t.Member(name); m != nil {
				return m
			}
			if imp.recursive {
				var found *Element
				t.Walk(func(e *Element) bool {
					if found == nil && e != t && e.Name == name {
						found = e
					}
					return found == nil
				})
				if found != nil {
					return found
				}
			}
		} else if t.Name == name {
			return t
		}
	}
	return nil
}

// resolveQualified resolves "A::B::C" starting lexically at from.
func (r *resolver) resolveQualified(from *Element, q *ast.QualifiedName) *Element {
	if q == nil || len(q.Parts) == 0 {
		return nil
	}
	cur := r.lookupLexical(from, q.Parts[0])
	if cur == nil {
		// Absolute fallback: top-level name.
		cur = r.model.Root.Member(q.Parts[0])
	}
	for _, part := range q.Parts[1:] {
		if cur == nil {
			return nil
		}
		cur = memberThrough(cur, part)
	}
	return cur
}

// memberThrough finds a feature by name through an element: its own
// members, then (for defs) inherited members, then (for usages) the type's
// inherited members.
func memberThrough(e *Element, name string) *Element {
	if e == nil {
		return nil
	}
	if m := e.Member(name); m != nil {
		return m
	}
	if e.RefTarget != nil {
		if m := memberThrough(e.RefTarget, name); m != nil {
			return m
		}
	}
	if e.Kind.IsDef() {
		return e.InheritedMember(name)
	}
	if e.Type != nil {
		return e.Type.InheritedMember(name)
	}
	return nil
}

// resolveFeaturePath resolves a dotted feature chain starting lexically.
func (r *resolver) resolveFeaturePath(from *Element, p *ast.FeaturePath) *Element {
	if p == nil || len(p.Parts) == 0 {
		return nil
	}
	cur := r.lookupLexical(from, p.Parts[0])
	for _, part := range p.Parts[1:] {
		if cur == nil {
			return nil
		}
		cur = memberThrough(cur, part)
	}
	return cur
}

// ---------------------------------------------------------------------------
// Pass 2: resolve specializations, types, feature references

func (r *resolver) resolveAll(e *Element) {
	// Two sub-passes so that types are available before feature paths are
	// resolved: (a) specializations and usage types, (b) feature paths.
	e.Walk(func(x *Element) bool {
		r.resolveHeader(x)
		return true
	})
	// Specializations are final now; freeze the per-element closure cache
	// so the feature-path pass and later extraction queries stop re-walking
	// specialization chains.
	e.Walk(func(x *Element) bool {
		x.freezeSupers()
		return true
	})
	e.Walk(func(x *Element) bool {
		r.resolveRefs(x)
		return true
	})
}

func (r *resolver) resolveHeader(e *Element) {
	switch {
	case e.Def != nil:
		for _, sup := range e.Def.Specializes {
			t := r.resolveQualified(e.Owner, sup)
			if t == nil {
				r.errorf(sup.Position, "cannot resolve specialization target %q of %s", sup, e)
				continue
			}
			if !t.Kind.IsDef() {
				r.errorf(sup.Position, "%s specializes %s, which is not a definition", e, t)
				continue
			}
			e.Supers = append(e.Supers, t)
		}
	case e.Usage != nil:
		if tr := e.Usage.Type; tr != nil {
			t := r.resolveQualified(e.Owner, tr.Name)
			if t == nil {
				r.errorf(tr.Name.Position, "cannot resolve type %q of %s", tr.Name, e)
			} else if !t.Kind.IsDef() {
				// Usages may also be typed by other usages (subsetting a
				// usage); accept but record as-is.
				e.Type = t
			} else {
				e.Type = t
			}
			e.Conjugated = tr.Conjugated
		} else if e.Ref && e.Name != "" {
			// "ref part Machine [*];" — name doubles as the referenced
			// definition or usage.
			if t := r.lookupLexicalExcluding(e.Owner, e.Name, e); t != nil && t != e {
				e.Type = t.TypeOrSelf()
				if t.Kind.IsUsage() {
					e.RefTarget = t
				}
			}
		}
		for _, sup := range e.Usage.Specializes {
			if t := r.resolveQualified(e.Owner, sup); t != nil {
				e.Supers = append(e.Supers, t)
			} else {
				r.errorf(sup.Position, "cannot resolve %q specialized by %s", sup, e)
			}
		}
	}
}

func (r *resolver) resolveRefs(e *Element) {
	switch e.Kind {
	case KindBind:
		e.BindLeft = r.resolveFeaturePath(e.Owner, e.LeftPath)
		e.BindRight = r.resolveFeaturePath(e.Owner, e.RightPath)
		if e.BindLeft == nil {
			r.errorf(e.LeftPath.Position, "cannot resolve bind endpoint %q", e.LeftPath)
		}
		if e.BindRight == nil {
			r.errorf(e.RightPath.Position, "cannot resolve bind endpoint %q", e.RightPath)
		}
	case KindConnect:
		e.ConnectFrom = r.resolveFeaturePath(e.Owner, e.FromPath)
		e.ConnectTo = r.resolveFeaturePath(e.Owner, e.ToPath)
		if e.ConnectFrom == nil {
			r.errorf(e.FromPath.Position, "cannot resolve connect endpoint %q", e.FromPath)
		}
		if e.ConnectTo == nil {
			r.errorf(e.ToPath.Position, "cannot resolve connect endpoint %q", e.ToPath)
		}
	case KindPerform:
		e.PerformTarget = r.resolveFeaturePath(e.Owner, e.PerfPath)
		if e.PerformTarget == nil {
			r.errorf(e.PerfPath.Position, "cannot resolve perform target %q", e.PerfPath)
		}
	}
	if e.Usage != nil {
		for _, rd := range e.Usage.Redefines {
			t := r.resolveRedefined(e, rd)
			if t == nil {
				r.errorf(rd.Position, "cannot resolve redefined feature %q", rd)
				continue
			}
			e.Redefines = append(e.Redefines, t)
		}
		for _, sb := range e.Usage.Subsets {
			if t := r.resolveFeaturePath(e.Owner, sb); t != nil {
				e.Subsets = append(e.Subsets, t)
			} else {
				r.errorf(sb.Position, "cannot resolve subsetted feature %q", sb)
			}
		}
		if ref, ok := e.Usage.Value.(*ast.FeatureRef); ok {
			if r.resolveFeaturePath(e.Owner, ref.Path) == nil {
				r.errorf(ref.Path.Position, "cannot resolve value reference %q", ref.Path)
			}
		}
	}
}

// resolveRedefined resolves the target of ":>> path": the redefined feature
// must be visible through the owner (an inherited or typed feature).
func (r *resolver) resolveRedefined(e *Element, p *ast.FeaturePath) *Element {
	owner := e.Owner
	if owner == nil {
		return nil
	}
	// First segment through the owner's type/supers (the usual case:
	// ":>> ip = ..." inside "part emcoParameters : EMCOParameters").
	cur := memberThrough(owner, p.Parts[0])
	if cur == nil {
		cur = r.lookupLexical(e, p.Parts[0])
	}
	for _, part := range p.Parts[1:] {
		if cur == nil {
			return nil
		}
		cur = memberThrough(cur, part)
	}
	if cur == e {
		return nil
	}
	return cur
}

// ---------------------------------------------------------------------------
// Pass 3: checks

// checkCycles detects cyclic specialization.
func (r *resolver) checkCycles() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[*Element]int{}
	var visit func(e *Element) bool
	visit = func(e *Element) bool {
		switch state[e] {
		case gray:
			return true // cycle
		case black:
			return false
		}
		state[e] = gray
		for _, s := range e.Supers {
			if visit(s) {
				state[e] = black
				r.errorf(e.Pos(), "specialization cycle involving %s", e)
				return false // report once per cycle entry
			}
		}
		state[e] = black
		return false
	}
	r.model.Root.Walk(func(e *Element) bool {
		if e.Kind.IsDef() && state[e] == white {
			visit(e)
		}
		return true
	})
}

func (r *resolver) checkAll(root *Element) {
	root.Walk(func(e *Element) bool {
		r.checkElement(e)
		return true
	})
}

func (r *resolver) checkElement(e *Element) {
	// Abstract instantiation: a non-ref usage directly typed by an abstract
	// definition is an error (abstract defs are templates).
	if e.Kind.IsUsage() && !e.Ref && !e.Abstract && e.Type != nil &&
		e.Type.Kind.IsDef() && e.Type.Abstract {
		r.errorf(e.Pos(), "%s instantiates abstract %s; specialize it instead", e, e.Type)
	}
	// Multiplicity sanity.
	if m := e.Multiplicity; m != nil {
		if m.Upper != ast.Many && m.Lower > m.Upper {
			r.errorf(m.Position, "invalid multiplicity %s on %s", m, e)
		}
		if m.Lower < 0 {
			r.errorf(m.Position, "negative lower bound in multiplicity on %s", e)
		}
	}
	// Literal value vs builtin attribute type.
	if e.Kind == KindAttributeUsage && e.Value != nil && e.Type != nil && e.Type.Kind == KindBuiltin {
		if !literalMatches(e.Value, e.Type.Name) {
			r.warnf(e.Pos(), "value of %s does not match declared type %s", e, e.Type.Name)
		}
	}
	// Redefinition value type check against the redefined feature's type.
	if e.Value != nil && len(e.Redefines) == 1 {
		t := e.Redefines[0].Type
		if t != nil && t.Kind == KindBuiltin && !literalMatches(e.Value, t.Name) {
			r.warnf(e.Pos(), "redefinition value for %q does not match type %s", e.Redefines[0].Name, t.Name)
		}
	}
	// Bind endpoints should agree on builtin type when both are typed.
	if e.Kind == KindBind && e.BindLeft != nil && e.BindRight != nil {
		lt, rt := e.BindLeft.Type, e.BindRight.Type
		if lt != nil && rt != nil && lt.Kind == KindBuiltin && rt.Kind == KindBuiltin && !scalarCompatible(lt.Name, rt.Name) {
			r.warnf(e.BindLeft.Pos(), "bind connects %s to %s: incompatible scalar types %s and %s",
				e.BindLeft, e.BindRight, lt.Name, rt.Name)
		}
	}
	// Connect endpoints should be ports (or parts owning ports).
	if e.Kind == KindConnect && e.ConnectFrom != nil && e.ConnectTo != nil {
		okKind := func(x *Element) bool {
			switch x.Kind {
			case KindPortUsage, KindPartUsage, KindEndUsage, KindPortDef:
				return true
			}
			return false
		}
		if !okKind(e.ConnectFrom) || !okKind(e.ConnectTo) {
			r.warnf(e.Pos(), "connect endpoints %s and %s are not connectable features",
				e.ConnectFrom, e.ConnectTo)
		}
		// Port-typed endpoints must use the same port definition, with
		// exactly one side conjugated (a standard port talks to its
		// conjugated counterpart).
		from, to := e.ConnectFrom, e.ConnectTo
		if from.Kind == KindPortUsage && to.Kind == KindPortUsage &&
			from.Type != nil && to.Type != nil {
			if from.Type != to.Type {
				r.warnf(e.Pos(), "connect joins ports of different definitions: %s (%s) and %s (%s)",
					from, from.Type.Name, to, to.Type.Name)
			} else if from.Conjugated == to.Conjugated {
				r.warnf(e.Pos(), "connect joins two %s ports of %s; one end must be conjugated",
					map[bool]string{true: "conjugated", false: "non-conjugated"}[from.Conjugated],
					from.Type.Name)
			}
		}
	}
}

func literalMatches(v ast.Expr, typeName string) bool {
	switch v.(type) {
	case *ast.StringLit:
		return typeName == "String" || typeName == "Anything" || typeName == "ScalarValue"
	case *ast.IntLit:
		switch typeName {
		case "Integer", "Natural", "Positive", "Real", "Double", "Float", "Rational", "Number", "Anything", "ScalarValue":
			return true
		}
		return false
	case *ast.RealLit:
		switch typeName {
		case "Real", "Double", "Float", "Rational", "Number", "Anything", "ScalarValue":
			return true
		}
		return false
	case *ast.BoolLit:
		return typeName == "Boolean" || typeName == "Anything" || typeName == "ScalarValue"
	case *ast.FeatureRef:
		return true // cross-feature assignment, checked elsewhere
	}
	return true
}

func scalarCompatible(a, b string) bool {
	if a == b || a == "Anything" || b == "Anything" || a == "ScalarValue" || b == "ScalarValue" {
		return true
	}
	numeric := map[string]bool{"Integer": true, "Natural": true, "Positive": true,
		"Real": true, "Double": true, "Float": true, "Rational": true, "Number": true}
	return numeric[a] && numeric[b]
}

// ---------------------------------------------------------------------------
// Model queries

// FindByQualifiedName resolves an absolute "A::B::C" path from the root.
func (m *Model) FindByQualifiedName(qn string) *Element {
	cur := m.Root
	for _, part := range splitQualified(qn) {
		if cur == nil {
			return nil
		}
		next := cur.Member(part)
		if next == nil && cur.Kind.IsDef() {
			next = cur.InheritedMember(part)
		}
		cur = next
	}
	return cur
}

func splitQualified(qn string) []string {
	var parts []string
	start := 0
	for i := 0; i+1 < len(qn); i++ {
		if qn[i] == ':' && qn[i+1] == ':' {
			parts = append(parts, qn[start:i])
			start = i + 2
			i++
		}
	}
	parts = append(parts, qn[start:])
	return parts
}

// FindDef returns the first definition with the given simple name anywhere
// in the model, or nil.
func (m *Model) FindDef(name string) *Element {
	var found *Element
	m.Root.Walk(func(e *Element) bool {
		if found != nil {
			return false
		}
		if e.Kind.IsDef() && e.Name == name {
			found = e
			return false
		}
		return true
	})
	return found
}

// FindUsage returns the first usage with the given simple name, or nil.
func (m *Model) FindUsage(name string) *Element {
	for _, e := range m.ElementsNamed(name) {
		if e.Kind.IsUsage() {
			return e
		}
	}
	return nil
}

// UsagesTypedBy returns every usage whose resolved type is def or a
// specialization of def.
func (m *Model) UsagesTypedBy(def *Element) []*Element {
	var out []*Element
	m.Root.Walk(func(e *Element) bool {
		if e.Kind.IsUsage() && e.Type != nil {
			if e.Type == def {
				out = append(out, e)
				return true
			}
			for _, s := range e.Type.AllSupers() {
				if s == def {
					out = append(out, e)
					break
				}
			}
		}
		return true
	})
	return out
}
