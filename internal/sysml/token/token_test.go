package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"package":     KwPackage,
		"part":        KwPart,
		"def":         KwDef,
		"attribute":   KwAttribute,
		"port":        KwPort,
		"action":      KwAction,
		"interface":   KwInterface,
		"connection":  KwConnection,
		"connect":     KwConnect,
		"bind":        KwBind,
		"ref":         KwRef,
		"abstract":    KwAbstract,
		"in":          KwIn,
		"out":         KwOut,
		"inout":       KwInout,
		"specializes": KwSpecializes,
		"redefines":   KwRedefines,
		"subsets":     KwSubsets,
		"perform":     KwPerform,
		"end":         KwEnd,
		"true":        KwTrue,
		"false":       KwFalse,
		"import":      KwImport,
		"private":     KwPrivate,
		"doc":         KwDoc,
		"notakeyword": Ident,
		"Part":        Ident, // keywords are case-sensitive
		"":            Ident,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword(KwPackage) || !IsKeyword(KwNull) {
		t.Error("keyword kinds not recognized")
	}
	for _, k := range []Kind{Ident, Int, String, LBrace, EOF, Illegal, Specializes_} {
		if IsKeyword(k) {
			t.Errorf("IsKeyword(%v) = true", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Specializes_: ":>",
		Redefines_:   ":>>",
		ColonColon:   "::",
		DotDot:       "..",
		KwPart:       "part",
		EOF:          "EOF",
		Ident:        "IDENT",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestPosition(t *testing.T) {
	p := Position{File: "m.sysml", Line: 3, Column: 7}
	if p.String() != "m.sysml:3:7" {
		t.Errorf("String = %q", p.String())
	}
	if !p.IsValid() {
		t.Error("valid position reported invalid")
	}
	zero := Position{}
	if zero.IsValid() || zero.String() != "-" {
		t.Errorf("zero position: valid=%v str=%q", zero.IsValid(), zero.String())
	}
	noFile := Position{Line: 2, Column: 1}
	if noFile.String() != "2:1" {
		t.Errorf("no-file position = %q", noFile.String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Lit: "emco"}
	if tok.String() != `IDENT("emco")` {
		t.Errorf("String = %q", tok.String())
	}
	punct := Token{Kind: LBrace}
	if punct.String() != "{" {
		t.Errorf("String = %q", punct.String())
	}
}
