// Package token defines the lexical tokens of the SysML v2 textual notation
// subset implemented by this repository, together with source positions.
//
// The token set covers the language constructs used by the smart-factory
// modeling methodology: packages, part/attribute/port/action/interface/
// connection definitions and usages, specialization (":>"), redefinition
// (":>>"), subsetting, port conjugation ("~"), binding connectors,
// multiplicities and literals.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds start at keywordBeg; the parser relies on
// IsKeyword to treat keywords as identifiers where the grammar permits
// (SysML v2 keywords are not reserved in feature-name position in several
// productions, e.g. an attribute may be called "value").
const (
	Illegal Kind = iota
	EOF
	Comment    // // ... or /* ... */ (non-doc)
	DocComment // doc /* ... */ body is carried by the parser, the lexer emits Doc keyword + Comment

	// Literals and names.
	Ident  // emcoDriver, EMCOVariables
	Int    // 5557
	Real   // 3.14
	String // 'text' or "text"

	// Punctuation and operators.
	LBrace       // {
	RBrace       // }
	LBrack       // [
	RBrack       // ]
	LParen       // (
	RParen       // )
	Semi         // ;
	Colon        // :
	ColonColon   // ::
	Comma        // ,
	Dot          // .
	DotDot       // ..
	Assign       // =
	Star         // *
	Tilde        // ~
	Specializes_ // :>
	Redefines_   // :>>
	Conjugates_  // ~ used in type position (lexed as Tilde; kept for doc)

	keywordBeg
	KwPackage
	KwImport
	KwPrivate
	KwPublic
	KwPart
	KwItem
	KwDef
	KwAttribute
	KwPort
	KwAction
	KwInterface
	KwConnection
	KwConnect
	KwTo
	KwBind
	KwRef
	KwAbstract
	KwIn
	KwOut
	KwInout
	KwSpecializes
	KwRedefines
	KwSubsets
	KwDoc
	KwPerform
	KwEnd
	KwFlow
	KwFrom
	KwTrue
	KwFalse
	KwNull
	keywordEnd
)

var kindNames = map[Kind]string{
	Illegal:       "ILLEGAL",
	EOF:           "EOF",
	Comment:       "COMMENT",
	DocComment:    "DOC_COMMENT",
	Ident:         "IDENT",
	Int:           "INT",
	Real:          "REAL",
	String:        "STRING",
	LBrace:        "{",
	RBrace:        "}",
	LBrack:        "[",
	RBrack:        "]",
	LParen:        "(",
	RParen:        ")",
	Semi:          ";",
	Colon:         ":",
	ColonColon:    "::",
	Comma:         ",",
	Dot:           ".",
	DotDot:        "..",
	Assign:        "=",
	Star:          "*",
	Tilde:         "~",
	Specializes_:  ":>",
	Redefines_:    ":>>",
	KwPackage:     "package",
	KwImport:      "import",
	KwPrivate:     "private",
	KwPublic:      "public",
	KwPart:        "part",
	KwItem:        "item",
	KwDef:         "def",
	KwAttribute:   "attribute",
	KwPort:        "port",
	KwAction:      "action",
	KwInterface:   "interface",
	KwConnection:  "connection",
	KwConnect:     "connect",
	KwTo:          "to",
	KwBind:        "bind",
	KwRef:         "ref",
	KwAbstract:    "abstract",
	KwIn:          "in",
	KwOut:         "out",
	KwInout:       "inout",
	KwSpecializes: "specializes",
	KwRedefines:   "redefines",
	KwSubsets:     "subsets",
	KwDoc:         "doc",
	KwPerform:     "perform",
	KwEnd:         "end",
	KwFlow:        "flow",
	KwFrom:        "from",
	KwTrue:        "true",
	KwFalse:       "false",
	KwNull:        "null",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps source spelling to keyword kind.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind, keywordEnd-keywordBeg)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for an identifier spelling, or Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a keyword kind.
func IsKeyword(k Kind) bool { return k > keywordBeg && k < keywordEnd }

// Position is a source location (1-based line and column, 0-based offset).
type Position struct {
	File   string
	Offset int
	Line   int
	Column int
}

// IsValid reports whether the position carries a real location.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders "file:line:col" (or "line:col" when no file is set).
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
}

// Token is a lexed token: kind, literal spelling and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for Ident/Int/Real/String/Comment; "" otherwise
	Pos  Position
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Lit != "" && t.Kind != EOF {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
