package printer

import (
	"reflect"
	"strings"
	"testing"

	"github.com/smartfactory/sysml2conf/internal/icelab"
	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
)

func roundTrip(t *testing.T, src string) (string, string) {
	t.Helper()
	f1, err := parser.ParseFile("a.sysml", src)
	if err != nil {
		t.Fatalf("first parse: %v", err)
	}
	out1 := Print(f1)
	f2, err := parser.ParseFile("b.sysml", out1)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\noutput:\n%s", err, out1)
	}
	out2 := Print(f2)
	return out1, out2
}

func TestIdempotent(t *testing.T) {
	src := `
package P {
	import ISA95::*;
	abstract part def Driver;
	part def D :> Driver {
		attribute ip : String;
		port def V { in attribute value : Anything; }
	}
	part d : D {
		:>> ip = '10.0.0.1';
		port p : ~D::V;
		bind p.value = ip;
	}
	connect d.p to d.p;
}
`
	out1, out2 := roundTrip(t, src)
	if out1 != out2 {
		t.Errorf("printer not idempotent:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
}

func TestPreservesConstructs(t *testing.T) {
	src := `
part def W {
	ref part Machine [*];
	ref part one [3];
	ref part range [1..5];
}
abstract part def A :> B, C;
part x : T {
	in attribute i : Integer = 7;
	out attribute o : Real = 2.5;
	action a { out ready : Boolean; }
	perform p.operation {
		out ready = a.ready;
	}
}
`
	out, _ := roundTrip(t, src)
	for _, want := range []string{
		"ref part Machine [*];",
		"ref part one [3];",
		"ref part range [1..5];",
		"abstract part def A :> B, C;",
		"in attribute i : Integer = 7",
		"out attribute o : Real = 2.5",
		"perform p.operation {",
		"out ready = a.ready;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output lacks %q:\n%s", want, out)
		}
	}
}

// structure flattens an AST into a comparable skeleton (kinds and names),
// ignoring positions.
func structure(f *ast.File) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Package:
			out = append(out, "pkg:"+x.Name)
		case *ast.Definition:
			out = append(out, "def:"+x.Kind.String()+":"+x.Name+":"+specs(x.Specializes))
		case *ast.Usage:
			val := ""
			if x.Value != nil {
				val = "=v"
			}
			out = append(out, "use:"+x.Kind.String()+":"+x.Name+":"+x.Direction.String()+val)
		case *ast.Bind:
			out = append(out, "bind:"+x.Left.String()+"="+x.Right.String())
		case *ast.Connect:
			out = append(out, "connect:"+x.From.String()+">"+x.To.String())
		case *ast.Perform:
			out = append(out, "perform:"+x.Target.String())
		}
		return true
	})
	return out
}

func specs(qs []*ast.QualifiedName) string {
	var parts []string
	for _, q := range qs {
		parts = append(parts, q.String())
	}
	return strings.Join(parts, ",")
}

func TestRoundTripPreservesStructureOnICELab(t *testing.T) {
	src := icelab.GenerateModelText(icelab.ICELab())
	f1, err := parser.ParseFile("ice.sysml", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f1)
	f2, err := parser.ParseFile("ice2.sysml", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	s1, s2 := structure(f1), structure(f2)
	if len(s1) != len(s2) {
		t.Fatalf("structure size changed: %d -> %d", len(s1), len(s2))
	}
	if !reflect.DeepEqual(s1, s2) {
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("structure diverges at %d: %q vs %q", i, s1[i], s2[i])
			}
		}
	}
}

func TestQuoteEscapes(t *testing.T) {
	src := `part p { attribute s : String = 'it\'s\na\ttab\\'; }`
	f1, err := parser.ParseFile("q.sysml", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f1)
	f2, err := parser.ParseFile("q2.sysml", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	var v1, v2 string
	grab := func(f *ast.File, dst *string) {
		ast.Inspect(f, func(n ast.Node) bool {
			if u, ok := n.(*ast.Usage); ok && u.Value != nil {
				if s, ok := u.Value.(*ast.StringLit); ok {
					*dst = s.Value
				}
			}
			return true
		})
	}
	grab(f1, &v1)
	grab(f2, &v2)
	if v1 != v2 || v1 != "it's\na\ttab\\" {
		t.Errorf("string value changed: %q vs %q", v1, v2)
	}
}

func TestEmptyBodiesPrintAsSemis(t *testing.T) {
	out, _ := roundTrip(t, "part def A; package Empty; part def B { }")
	if !strings.Contains(out, "part def A;") {
		t.Errorf("missing A: %s", out)
	}
	if !strings.Contains(out, "package Empty;") {
		t.Errorf("missing Empty: %s", out)
	}
	if !strings.Contains(out, "part def B;") {
		t.Errorf("empty body should collapse to ';': %s", out)
	}
}
