package printer

import (
	"testing"
	"testing/quick"

	"github.com/smartfactory/sysml2conf/internal/icelab"
	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
)

// TestRoundTripPropertyRandomFactories: for any synthesized factory model,
// parse -> print -> parse preserves the structural skeleton and the second
// print is byte-identical (idempotence).
func TestRoundTripPropertyRandomFactories(t *testing.T) {
	f := func(nMachines uint8, nVars uint8, nSvcs uint8) bool {
		spec := icelab.FactorySpec{
			TopologyName: "T", Enterprise: "E", Site: "S", Area: "A", Line: "l",
		}
		machines := int(nMachines%3) + 1
		for i := 0; i < machines; i++ {
			m := icelab.MachineSpec{
				Name:     "m" + string(rune('a'+i)),
				TypeName: "M" + string(rune('A'+i)),
				Display:  "Machine",
				Workcell: "wc1",
				Driver:   icelab.DriverKind(i % 2),
				IP:       "10.0.0.1",
				Port:     5000 + i,
			}
			cat := icelab.Category{Name: "Cat"}
			for v := 0; v < int(nVars%5)+1; v++ {
				cat.Vars = append(cat.Vars, icelab.VarDef{
					Name: "v" + string(rune('a'+v)), Type: "Double"})
			}
			m.Categories = []icelab.Category{cat}
			for s := 0; s < int(nSvcs%3)+1; s++ {
				m.Services = append(m.Services, icelab.ServiceDef{
					Name:    "svc" + string(rune('a'+s)),
					Returns: []icelab.ParamDef{{Name: "result", Type: "Boolean"}},
				})
			}
			spec.Machines = append(spec.Machines, m)
		}

		src := icelab.GenerateModelText(spec)
		f1, err := parser.ParseFile("a.sysml", src)
		if err != nil {
			return false
		}
		out1 := Print(f1)
		f2, err := parser.ParseFile("b.sysml", out1)
		if err != nil {
			return false
		}
		out2 := Print(f2)
		if out1 != out2 {
			return false
		}
		s1, s2 := structure(f1), structure(f2)
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
