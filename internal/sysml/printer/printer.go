// Package printer renders a SysML v2 syntax tree back to canonical textual
// notation. The output is stable: printing a freshly parsed file and parsing
// it again yields a structurally identical tree (round-trip property), which
// the formatter tool and tests rely on.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
)

// Print renders the file with tab indentation.
func Print(f *ast.File) string {
	var p printer
	for i, m := range f.Members {
		if i > 0 {
			p.nl()
		}
		p.member(m)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) member(m ast.Member) {
	switch n := m.(type) {
	case *ast.Package:
		p.pkg(n)
	case *ast.Import:
		p.importDecl(n)
	case *ast.Definition:
		p.definition(n)
	case *ast.Usage:
		p.usage(n)
	case *ast.Bind:
		p.line("bind %s = %s;", n.Left, n.Right)
	case *ast.Connect:
		p.connect(n)
	case *ast.Perform:
		p.perform(n)
	case *ast.Doc:
		if n.Text != "" {
			p.line("doc %s;", quote(n.Text))
		}
	case *ast.Comment:
		p.line("%s", n.Text)
	}
}

func (p *printer) body(members []ast.Member) bool {
	if len(members) == 0 {
		return false
	}
	p.b.WriteString(" {\n")
	p.indent++
	for _, m := range members {
		p.member(m)
	}
	p.indent--
	p.b.WriteString(strings.Repeat("\t", p.indent))
	p.b.WriteString("}\n")
	return true
}

func (p *printer) pkg(n *ast.Package) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, "package %s", n.Name)
	if !p.body(n.Members) {
		p.b.WriteString(";\n")
	}
}

func (p *printer) importDecl(n *ast.Import) {
	var b strings.Builder
	if n.Private {
		b.WriteString("private ")
	}
	b.WriteString("import ")
	b.WriteString(n.Path.String())
	if n.Wildcard {
		b.WriteString("::*")
		if n.Recursive {
			b.WriteString("*")
		}
	}
	b.WriteString(";")
	p.line("%s", b.String())
}

func (p *printer) definition(n *ast.Definition) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	if n.Abstract {
		p.b.WriteString("abstract ")
	}
	fmt.Fprintf(&p.b, "%s def %s", n.Kind, n.Name)
	for i, s := range n.Specializes {
		if i == 0 {
			p.b.WriteString(" :> ")
		} else {
			p.b.WriteString(", ")
		}
		p.b.WriteString(s.String())
	}
	if !p.body(n.Members) {
		p.b.WriteString(";\n")
	}
}

func (p *printer) usage(n *ast.Usage) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	if n.Direction != ast.DirNone {
		p.b.WriteString(n.Direction.String())
		p.b.WriteByte(' ')
	}
	if n.Ref {
		p.b.WriteString("ref ")
	}
	if n.Abstract {
		p.b.WriteString("abstract ")
	}
	// Anonymous pure redefinition keeps the ":>> x = v" shape.
	anonymous := n.Name == "" && len(n.Redefines) > 0
	switch {
	case anonymous:
	case n.ImplicitKind && n.Direction != ast.DirNone:
		// Directional parameter short form: "out ready : Boolean;".
		p.b.WriteString(n.Name)
	default:
		p.b.WriteString(n.Kind.String())
		if n.Name != "" {
			p.b.WriteByte(' ')
			p.b.WriteString(n.Name)
		}
	}
	if n.Type != nil {
		p.b.WriteString(" : ")
		p.b.WriteString(n.Type.String())
	}
	if n.Multiplicity != nil {
		p.b.WriteByte(' ')
		p.b.WriteString(n.Multiplicity.String())
	}
	for _, s := range n.Specializes {
		p.b.WriteString(" :> ")
		p.b.WriteString(s.String())
	}
	for i, r := range n.Redefines {
		if anonymous && i == 0 {
			p.b.WriteString(":>> ")
			p.b.WriteString(r.String())
			continue
		}
		p.b.WriteString(" :>> ")
		p.b.WriteString(r.String())
	}
	for _, s := range n.Subsets {
		p.b.WriteString(" subsets ")
		p.b.WriteString(s.String())
	}
	if n.Value != nil {
		p.b.WriteString(" = ")
		p.b.WriteString(exprString(n.Value))
	}
	if !p.body(n.Members) {
		p.b.WriteString(";\n")
	}
}

func (p *printer) connect(n *ast.Connect) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	if n.Type != nil {
		p.b.WriteString("interface ")
		if n.Name != "" {
			p.b.WriteString(n.Name)
			p.b.WriteByte(' ')
		}
		p.b.WriteString(": ")
		p.b.WriteString(n.Type.String())
		p.b.WriteByte(' ')
	}
	fmt.Fprintf(&p.b, "connect %s to %s;\n", n.From, n.To)
}

func (p *printer) perform(n *ast.Perform) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, "perform %s", n.Target)
	if !p.body(n.Members) {
		p.b.WriteString(";\n")
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StringLit:
		return quote(x.Value)
	case *ast.IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *ast.RealLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *ast.BoolLit:
		return strconv.FormatBool(x.Value)
	case *ast.FeatureRef:
		return x.Path.String()
	}
	return ""
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}
