// Package parser implements a recursive-descent parser for the SysML v2
// textual notation subset used by the smart-factory modeling methodology.
//
// The parser is resilient: syntax errors are recorded and parsing resumes at
// the next ";" or "}" so that a single mistake does not hide the rest of the
// model's diagnostics.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/lexer"
	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// Error is a syntax error bound to a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is the ordered collection of syntax errors from one parse.
type ErrorList []*Error

// Error renders up to ten errors, one per line.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i == 10 {
			fmt.Fprintf(&b, "... and %d more errors", len(l)-10)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Parser holds the parsing state for one compilation unit.
type Parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	peek token.Token
	errs ErrorList

	// maxErrors caps recorded errors to avoid cascading noise.
	maxErrors int
}

// ParseFile parses src into a File. The returned error, if non-nil, is an
// ErrorList; a partial AST is still returned for tooling that wants it.
func ParseFile(filename, src string) (*ast.File, error) {
	p := newParser(filename, src)
	f := &ast.File{Name: filename, Position: p.tok.Pos}
	for p.tok.Kind != token.EOF {
		before := p.tok
		m := p.parseMember()
		if m != nil {
			f.Members = append(f.Members, m)
		}
		// Progress guard: a stray "}" (or any member that consumed
		// nothing) must not stall the top-level loop.
		if m == nil && p.tok == before {
			p.errorf(p.tok.Pos, "unexpected %s at top level", p.tok)
			p.advance()
		}
	}
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for tests and for
// embedding known-good models.
func MustParse(filename, src string) *ast.File {
	f, err := ParseFile(filename, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%s): %v", filename, err))
	}
	return f
}

func newParser(filename, src string) *Parser {
	l := lexer.New(filename, src)
	l.KeepComments = true
	p := &Parser{lex: l, maxErrors: 100}
	// Prime tok and peek.
	p.peek = p.scan()
	p.advance()
	return p
}

// scan returns the next non-comment token, remembering nothing; comments are
// consumed here except immediately after a "doc" keyword (handled by
// parseDoc via rawNext).
func (p *Parser) scan() token.Token {
	for {
		t := p.lex.Next()
		if t.Kind != token.Comment {
			return t
		}
	}
}

func (p *Parser) advance() {
	p.tok = p.peek
	p.peek = p.scan()
}

func (p *Parser) errorf(pos token.Position, format string, args ...any) {
	if len(p.errs) >= p.maxErrors {
		return
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// expect consumes a token of kind k or records an error.
func (p *Parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: let recovery handle it, except for closers that
		// would deadlock.
		if t.Kind == token.EOF {
			return t
		}
	}
	p.advance()
	return t
}

// accept consumes the token if it matches and reports whether it did.
func (p *Parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// sync skips tokens until after the next ";" or until a "}" / EOF.
func (p *Parser) sync() {
	depth := 0
	for {
		switch p.tok.Kind {
		case token.EOF:
			return
		case token.Semi:
			if depth == 0 {
				p.advance()
				return
			}
			p.advance()
		case token.LBrace:
			depth++
			p.advance()
		case token.RBrace:
			if depth == 0 {
				return
			}
			depth--
			p.advance()
			if depth == 0 {
				return
			}
		default:
			p.advance()
		}
	}
}

// identLike consumes an identifier, also accepting non-structural keywords
// (e.g. "value", "to", "end", "in") as names where the grammar is
// unambiguous.
func (p *Parser) identLike() (string, bool) {
	switch {
	case p.tok.Kind == token.Ident:
		name := p.tok.Lit
		p.advance()
		return name, true
	case token.IsKeyword(p.tok.Kind):
		// Permit keywords as plain names (SysML v2 reserves few words in
		// feature position); structural parsing decided before calling.
		name := p.tok.Lit
		p.advance()
		return name, true
	default:
		return "", false
	}
}

// ---------------------------------------------------------------------------
// Names and types

func (p *Parser) parseQualifiedName() *ast.QualifiedName {
	pos := p.tok.Pos
	q := &ast.QualifiedName{Position: pos}
	name, ok := p.identLike()
	if !ok {
		p.errorf(pos, "expected name, found %s", p.tok)
		return q
	}
	q.Parts = append(q.Parts, name)
	for p.tok.Kind == token.ColonColon {
		// Stop before wildcard imports: "::*" is handled by the caller.
		if p.peek.Kind == token.Star {
			return q
		}
		p.advance()
		name, ok := p.identLike()
		if !ok {
			p.errorf(p.tok.Pos, "expected name after '::', found %s", p.tok)
			return q
		}
		q.Parts = append(q.Parts, name)
	}
	return q
}

func (p *Parser) parseFeaturePath() *ast.FeaturePath {
	pos := p.tok.Pos
	f := &ast.FeaturePath{Position: pos}
	name, ok := p.identLike()
	if !ok {
		p.errorf(pos, "expected feature name, found %s", p.tok)
		return f
	}
	f.Parts = append(f.Parts, name)
	for p.tok.Kind == token.Dot || p.tok.Kind == token.ColonColon {
		p.advance()
		name, ok := p.identLike()
		if !ok {
			p.errorf(p.tok.Pos, "expected name in feature path, found %s", p.tok)
			return f
		}
		f.Parts = append(f.Parts, name)
	}
	return f
}

func (p *Parser) parseTypeRef() *ast.TypeRef {
	conj := p.accept(token.Tilde)
	return &ast.TypeRef{Conjugated: conj, Name: p.parseQualifiedName()}
}

func (p *Parser) parseMultiplicity() *ast.Multiplicity {
	pos := p.tok.Pos
	p.expect(token.LBrack)
	m := &ast.Multiplicity{Position: pos}
	switch p.tok.Kind {
	case token.Star:
		m.Lower, m.Upper = 0, ast.Many
		p.advance()
	case token.Int:
		lo, _ := strconv.Atoi(p.tok.Lit)
		p.advance()
		if p.accept(token.DotDot) {
			switch p.tok.Kind {
			case token.Star:
				m.Lower, m.Upper = lo, ast.Many
				p.advance()
			case token.Int:
				hi, _ := strconv.Atoi(p.tok.Lit)
				m.Lower, m.Upper = lo, hi
				p.advance()
			default:
				p.errorf(p.tok.Pos, "expected upper bound, found %s", p.tok)
			}
		} else {
			m.Lower, m.Upper = lo, lo
		}
	default:
		p.errorf(p.tok.Pos, "expected multiplicity, found %s", p.tok)
	}
	p.expect(token.RBrack)
	return m
}

// ---------------------------------------------------------------------------
// Expressions

func (p *Parser) parseExpr() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.String:
		v := p.tok.Lit
		p.advance()
		return &ast.StringLit{Value: v, Position: pos}
	case token.Int:
		n, err := strconv.ParseInt(p.tok.Lit, 10, 64)
		if err != nil {
			p.errorf(pos, "invalid integer literal %q", p.tok.Lit)
		}
		p.advance()
		return &ast.IntLit{Value: n, Position: pos}
	case token.Real:
		x, err := strconv.ParseFloat(p.tok.Lit, 64)
		if err != nil {
			p.errorf(pos, "invalid real literal %q", p.tok.Lit)
		}
		p.advance()
		return &ast.RealLit{Value: x, Position: pos}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{Value: true, Position: pos}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{Value: false, Position: pos}
	case token.Ident:
		return &ast.FeatureRef{Path: p.parseFeaturePath()}
	default:
		// Unary minus on numbers.
		if p.tok.Kind == token.Illegal && p.tok.Lit == "-" {
			p.advance()
		}
		p.errorf(pos, "expected expression, found %s", p.tok)
		p.advance()
		return &ast.StringLit{Position: pos}
	}
}

// ---------------------------------------------------------------------------
// Members

// parseMember parses one package/body member, or nil on recovered error.
func (p *Parser) parseMember() ast.Member {
	switch p.tok.Kind {
	case token.KwPackage:
		return p.parsePackage()
	case token.KwImport, token.KwPrivate, token.KwPublic:
		return p.parseImport()
	case token.KwDoc:
		return p.parseDoc()
	case token.KwBind:
		return p.parseBind()
	case token.KwConnect:
		return p.parseConnect("", nil)
	case token.KwPerform:
		return p.parsePerform()
	case token.KwAbstract, token.KwRef, token.KwIn, token.KwOut, token.KwInout,
		token.KwPart, token.KwItem, token.KwAttribute, token.KwPort, token.KwAction,
		token.KwInterface, token.KwConnection, token.KwEnd:
		return p.parseDefOrUsage()
	case token.Redefines_:
		return p.parseAnonymousRedefinition()
	case token.Semi:
		p.advance()
		return nil
	case token.RBrace:
		// Caller closes the block.
		return nil
	default:
		p.errorf(p.tok.Pos, "unexpected %s at member position", p.tok)
		p.sync()
		return nil
	}
}

func (p *Parser) parsePackage() ast.Member {
	pos := p.tok.Pos
	p.expect(token.KwPackage)
	name, ok := p.identLike()
	if !ok {
		p.errorf(p.tok.Pos, "expected package name, found %s", p.tok)
		p.sync()
		return nil
	}
	pkg := &ast.Package{Name: name, Position: pos}
	if p.accept(token.Semi) {
		return pkg
	}
	p.expect(token.LBrace)
	pkg.Members = p.parseMembersUntilRBrace()
	p.expect(token.RBrace)
	return pkg
}

func (p *Parser) parseMembersUntilRBrace() []ast.Member {
	var members []ast.Member
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		before := p.tok
		m := p.parseMember()
		if m != nil {
			members = append(members, m)
		}
		// Guard against non-progress.
		if p.tok == before && m == nil {
			p.advance()
		}
	}
	return members
}

func (p *Parser) parseImport() ast.Member {
	pos := p.tok.Pos
	imp := &ast.Import{Position: pos}
	if p.accept(token.KwPrivate) {
		imp.Private = true
	} else {
		p.accept(token.KwPublic)
	}
	p.expect(token.KwImport)
	imp.Path = p.parseQualifiedName()
	if p.accept(token.ColonColon) {
		p.expect(token.Star)
		imp.Wildcard = true
		if p.accept(token.Star) { // "::**"
			imp.Recursive = true
		}
	}
	p.expect(token.Semi)
	return imp
}

// parseDoc handles "doc /* text */". The doc body arrives as a Comment
// token, which scan() normally filters, so peek may already have skipped
// it; instead the lexer keeps comments and scan() drops them. To keep the
// common path simple, doc accepts either an immediately following block
// comment captured in peek-history, or a string literal, or nothing.
func (p *Parser) parseDoc() ast.Member {
	pos := p.tok.Pos
	// The comment following "doc" was swallowed by scan(); re-lexing is not
	// possible, so the lexer-level contract is: parser keeps comments OFF in
	// scan but the doc body is recovered here from raw text when present.
	// Simplest robust approach: accept an optional String or Comment-shaped
	// body; models in this repo write doc bodies as strings.
	p.advance() // consume 'doc'
	d := &ast.Doc{Position: pos}
	if p.tok.Kind == token.String {
		d.Text = p.tok.Lit
		p.advance()
	}
	p.accept(token.Semi)
	return d
}

func (p *Parser) parseBind() ast.Member {
	pos := p.tok.Pos
	p.expect(token.KwBind)
	b := &ast.Bind{Position: pos}
	b.Left = p.parseFeaturePath()
	p.expect(token.Assign)
	b.Right = p.parseFeaturePath()
	p.expect(token.Semi)
	return b
}

func (p *Parser) parseConnect(name string, typ *ast.TypeRef) ast.Member {
	pos := p.tok.Pos
	p.expect(token.KwConnect)
	c := &ast.Connect{Name: name, Type: typ, Position: pos}
	c.From = p.parseFeaturePath()
	p.expect(token.KwTo)
	c.To = p.parseFeaturePath()
	p.expect(token.Semi)
	return c
}

func (p *Parser) parsePerform() ast.Member {
	pos := p.tok.Pos
	p.expect(token.KwPerform)
	pf := &ast.Perform{Position: pos}
	pf.Target = p.parseFeaturePath()
	if p.accept(token.LBrace) {
		pf.Members = p.parseMembersUntilRBrace()
		p.expect(token.RBrace)
	} else {
		p.expect(token.Semi)
	}
	return pf
}

// parseAnonymousRedefinition parses ":>> path [= expr] (';'|body)" appearing
// directly as a member (value redefinition inside an instantiated part).
func (p *Parser) parseAnonymousRedefinition() ast.Member {
	pos := p.tok.Pos
	p.expect(token.Redefines_)
	u := &ast.Usage{Kind: ast.UseAttribute, Position: pos}
	u.Redefines = append(u.Redefines, p.parseFeaturePath())
	if p.accept(token.Assign) {
		u.Value = p.parseExpr()
	}
	if p.accept(token.LBrace) {
		u.Members = p.parseMembersUntilRBrace()
		p.expect(token.RBrace)
	} else {
		p.expect(token.Semi)
	}
	return u
}

// parseDefOrUsage parses definitions ("<kind> def Name ...") and usages
// ("<kind> name : Type ..."), with optional leading direction / ref /
// abstract modifiers in any sensible order.
func (p *Parser) parseDefOrUsage() ast.Member {
	pos := p.tok.Pos
	dir := ast.DirNone
	isRef := false
	isAbstract := false

	// Leading modifiers.
loop:
	for {
		switch p.tok.Kind {
		case token.KwIn:
			dir = ast.DirIn
			p.advance()
		case token.KwOut:
			dir = ast.DirOut
			p.advance()
		case token.KwInout:
			dir = ast.DirInOut
			p.advance()
		case token.KwRef:
			isRef = true
			p.advance()
		case token.KwAbstract:
			isAbstract = true
			p.advance()
		default:
			break loop
		}
	}

	var defKind ast.DefKind
	var useKind ast.UsageKind
	hasKindKw := true
	switch p.tok.Kind {
	case token.KwPart:
		defKind, useKind = ast.DefPart, ast.UsePart
	case token.KwItem:
		defKind, useKind = ast.DefItem, ast.UseItem
	case token.KwAttribute:
		defKind, useKind = ast.DefAttribute, ast.UseAttribute
	case token.KwPort:
		defKind, useKind = ast.DefPort, ast.UsePort
	case token.KwAction:
		defKind, useKind = ast.DefAction, ast.UseAction
	case token.KwInterface:
		defKind, useKind = ast.DefInterface, ast.UseInterface
	case token.KwConnection:
		defKind, useKind = ast.DefConnection, ast.UseConnection
	case token.KwEnd:
		useKind = ast.UseEnd
		hasKindKw = true
	default:
		// Directional parameter without kind keyword: "out ready : Boolean;"
		if dir == ast.DirNone {
			p.errorf(p.tok.Pos, "expected definition or usage keyword, found %s", p.tok)
			p.sync()
			return nil
		}
		hasKindKw = false
		useKind = ast.UseAttribute
	}
	if hasKindKw {
		p.advance()
	}

	if p.tok.Kind == token.KwDef && useKind != ast.UseEnd {
		p.advance()
		return p.parseDefinitionTail(pos, defKind, isAbstract)
	}

	// interface usage with inline connect: "interface [name [: T]] connect a to b;"
	if useKind == ast.UseInterface {
		return p.parseInterfaceUsage(pos)
	}

	u := p.parseUsageTail(pos, useKind, dir, isRef, isAbstract)
	if !hasKindKw {
		if uu, ok := u.(*ast.Usage); ok {
			uu.ImplicitKind = true
		}
	}
	return u
}

func (p *Parser) parseDefinitionTail(pos token.Position, kind ast.DefKind, abstract bool) ast.Member {
	name, ok := p.identLike()
	if !ok {
		p.errorf(p.tok.Pos, "expected definition name, found %s", p.tok)
		p.sync()
		return nil
	}
	d := &ast.Definition{Kind: kind, Abstract: abstract, Name: name, Position: pos}
	for {
		if p.accept(token.Specializes_) || p.accept(token.KwSpecializes) {
			d.Specializes = append(d.Specializes, p.parseQualifiedName())
			for p.accept(token.Comma) {
				d.Specializes = append(d.Specializes, p.parseQualifiedName())
			}
			continue
		}
		break
	}
	switch {
	case p.accept(token.Semi):
	case p.accept(token.LBrace):
		d.Members = p.parseMembersUntilRBrace()
		p.expect(token.RBrace)
	default:
		p.errorf(p.tok.Pos, "expected ';' or '{' after definition header, found %s", p.tok)
		p.sync()
	}
	return d
}

func (p *Parser) parseInterfaceUsage(pos token.Position) ast.Member {
	name := ""
	var typ *ast.TypeRef
	if p.tok.Kind == token.Ident {
		name, _ = p.identLike()
	}
	if p.accept(token.Colon) {
		typ = p.parseTypeRef()
	}
	if p.tok.Kind == token.KwConnect {
		return p.parseConnect(name, typ)
	}
	u := &ast.Usage{Kind: ast.UseInterface, Name: name, Type: typ, Position: pos}
	if p.accept(token.LBrace) {
		u.Members = p.parseMembersUntilRBrace()
		p.expect(token.RBrace)
	} else {
		p.expect(token.Semi)
	}
	return u
}

func (p *Parser) parseUsageTail(pos token.Position, kind ast.UsageKind, dir ast.Direction, isRef, isAbstract bool) ast.Member {
	u := &ast.Usage{Kind: kind, Direction: dir, Ref: isRef, Abstract: isAbstract, Position: pos}

	// Name is optional for pure redefinitions (":>> x = v") but usual.
	if p.tok.Kind == token.Ident || isNameableKeyword(p.tok.Kind) {
		u.Name, _ = p.identLike()
	}

	for {
		switch {
		case p.tok.Kind == token.Colon:
			p.advance()
			u.Type = p.parseTypeRef()
		case p.tok.Kind == token.LBrack:
			u.Multiplicity = p.parseMultiplicity()
		case p.tok.Kind == token.Specializes_ || p.tok.Kind == token.KwSpecializes:
			p.advance()
			u.Specializes = append(u.Specializes, p.parseQualifiedName())
		case p.tok.Kind == token.Redefines_ || p.tok.Kind == token.KwRedefines:
			p.advance()
			u.Redefines = append(u.Redefines, p.parseFeaturePath())
		case p.tok.Kind == token.KwSubsets:
			p.advance()
			u.Subsets = append(u.Subsets, p.parseFeaturePath())
		case p.tok.Kind == token.Assign:
			p.advance()
			u.Value = p.parseExpr()
		default:
			goto done
		}
	}
done:
	switch {
	case p.accept(token.Semi):
	case p.accept(token.LBrace):
		u.Members = p.parseMembersUntilRBrace()
		p.expect(token.RBrace)
	default:
		p.errorf(p.tok.Pos, "expected ';' or '{' after usage, found %s", p.tok)
		p.sync()
	}
	return u
}

// isNameableKeyword reports whether a keyword may serve as a feature name.
func isNameableKeyword(k token.Kind) bool {
	switch k {
	case token.KwEnd, token.KwTo, token.KwFlow, token.KwFrom, token.KwDoc:
		return true
	}
	return false
}
