package parser

import (
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/printer"
)

func mustPrint(f *ast.File) string { return printer.Print(f) }

// TestParseItems: "item def" models things that flow through the plant
// (workpieces, pallets); items parse like parts with their own kind.
func TestParseItems(t *testing.T) {
	src := `
package Materials {
	item def Workpiece {
		attribute material : String;
		attribute mass : Double;
	}
	item def Pallet;
	part def Conveyor {
		ref item carried : Pallet [*];
	}
	item blank : Workpiece {
		:>> material = 'AlMg3';
	}
}
`
	f, err := ParseFile("items.sysml", src)
	if err != nil {
		t.Fatal(err)
	}
	var itemDefs, itemUsages int
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Definition:
			if x.Kind == ast.DefItem {
				itemDefs++
			}
		case *ast.Usage:
			if x.Kind == ast.UseItem {
				itemUsages++
			}
		}
		return true
	})
	if itemDefs != 2 {
		t.Errorf("item defs = %d, want 2", itemDefs)
	}
	if itemUsages != 2 { // carried + blank
		t.Errorf("item usages = %d, want 2", itemUsages)
	}
}

func TestItemsResolveAndPrint(t *testing.T) {
	src := `
item def Workpiece { attribute mass : Double; }
part def Cell {
	ref item wp : Workpiece [0..1];
}
`
	f, err := ParseFile("t.sysml", src)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the printer keeps the item keyword.
	reparsed, err := ParseFile("t2.sysml", mustPrint(f))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	found := false
	ast.Inspect(reparsed, func(n ast.Node) bool {
		if d, ok := n.(*ast.Definition); ok && d.Kind == ast.DefItem && d.Name == "Workpiece" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("item def lost in round trip")
	}
}
