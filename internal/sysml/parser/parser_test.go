package parser

import (
	"strings"
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
)

// code1 is the paper's Code 1: ISA-95 hierarchical structure.
const code1 = `
part def Topology {
	part def Enterprise {
		part def Site {
			part def Area {
				part def ProductionLine {
					attribute def ProductionLineVariables;
					part def Workcell {
						ref part Machine [*];
						attribute def WorkCellVariables;
					}
				}
			}
		}
	}
}
`

// code2 is the paper's Code 2: EMCODriver specialization.
const code2 = `
part def MachineDriver {
	part def DriverParameters;
	part def DriverVariables;
	part def DriverMethods;
}
part def EMCODriver :> MachineDriver {
	part def EMCOParameters :> DriverParameters {
		attribute ip : String;
		attribute ip_port : Integer;
		attribute program_file_path : String;
	}
	part def EMCOVariables :> DriverVariables {
		port def EMCOVar {
			in attribute value : String;
		}
		part def AxesPositions;
		part def SystemStatus;
	}
	part def EMCOMethods :> DriverMethods {
		port def EMCOMethod {
			attribute description : String;
			out action operation {
				in arg : String;
				out result : String;
			}
		}
	}
}
`

// code5 is the paper's Code 5: driver instantiation with redefinitions,
// binds and performs.
const code5 = `
part emcoDriver : EMCODriver {
	part emcoParameters : EMCOParameters {
		:>> ip = '10.197.12.11';
		:>> ip_port = 5557;
		:>> program_file_path = 'path/program/file';
	}
	part emcoVariables : EMCOVariables {
		part emcoSystemStatus : SystemStatus;
		part emcoAxesPositions : AxesPositions {
			attribute actualX : Double;
			port pp_actual_X_EMCOVar : EMCOVar;
			bind pp_actual_X_EMCOVar.value = actualX;
		}
	}
	part emcoMethods : EMCOMethods {
		action call_is_ready {
			out ready : Boolean;
			perform pp_is_ready_EMCOMthd.operation {
				out ready = call_is_ready.ready;
			}
		}
	}
}
`

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := ParseFile("test.sysml", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func TestParseCode1Hierarchy(t *testing.T) {
	f := parseOK(t, code1)
	if len(f.Members) != 1 {
		t.Fatalf("got %d top-level members, want 1", len(f.Members))
	}
	top, ok := f.Members[0].(*ast.Definition)
	if !ok || top.Name != "Topology" || top.Kind != ast.DefPart {
		t.Fatalf("top member = %#v, want part def Topology", f.Members[0])
	}
	// Descend to Workcell and check the ref part Machine [*].
	var workcell *ast.Definition
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.Definition); ok && d.Name == "Workcell" {
			workcell = d
		}
		return true
	})
	if workcell == nil {
		t.Fatal("Workcell definition not found")
	}
	var machineRef *ast.Usage
	for _, m := range workcell.Members {
		if u, ok := m.(*ast.Usage); ok && u.Name == "Machine" {
			machineRef = u
		}
	}
	if machineRef == nil {
		t.Fatal("ref part Machine not found in Workcell")
	}
	if !machineRef.Ref {
		t.Error("Machine usage should be ref")
	}
	if machineRef.Multiplicity == nil || machineRef.Multiplicity.Upper != ast.Many {
		t.Errorf("Machine multiplicity = %v, want [*]", machineRef.Multiplicity)
	}
}

func TestParseCode2Specializations(t *testing.T) {
	f := parseOK(t, code2)
	var emcoDriver *ast.Definition
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.Definition); ok && d.Name == "EMCODriver" {
			emcoDriver = d
		}
		return true
	})
	if emcoDriver == nil {
		t.Fatal("EMCODriver not found")
	}
	if len(emcoDriver.Specializes) != 1 || emcoDriver.Specializes[0].String() != "MachineDriver" {
		t.Errorf("EMCODriver specializes %v, want MachineDriver", emcoDriver.Specializes)
	}
	// The out action inside the port def must carry its direction.
	var op *ast.Usage
	ast.Inspect(f, func(n ast.Node) bool {
		if u, ok := n.(*ast.Usage); ok && u.Name == "operation" && u.Kind == ast.UseAction {
			op = u
		}
		return true
	})
	if op == nil {
		t.Fatal("action operation not found")
	}
	if op.Direction != ast.DirOut {
		t.Errorf("operation direction = %v, want out", op.Direction)
	}
	if len(op.Members) != 2 {
		t.Fatalf("operation has %d parameters, want 2", len(op.Members))
	}
}

func TestParseCode5InstantiationConstructs(t *testing.T) {
	f := parseOK(t, code5)

	var redefs []*ast.Usage
	var binds []*ast.Bind
	var performs []*ast.Perform
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Usage:
			if len(x.Redefines) > 0 {
				redefs = append(redefs, x)
			}
		case *ast.Bind:
			binds = append(binds, x)
		case *ast.Perform:
			performs = append(performs, x)
		}
		return true
	})

	if len(redefs) != 3 {
		t.Errorf("got %d redefinitions, want 3", len(redefs))
	}
	wantValues := map[string]string{
		"ip":                "10.197.12.11",
		"program_file_path": "path/program/file",
	}
	for _, u := range redefs {
		name := u.Redefines[0].String()
		if want, ok := wantValues[name]; ok {
			lit, isStr := u.Value.(*ast.StringLit)
			if !isStr || lit.Value != want {
				t.Errorf("redefinition %s value = %#v, want %q", name, u.Value, want)
			}
		}
		if name == "ip_port" {
			lit, isInt := u.Value.(*ast.IntLit)
			if !isInt || lit.Value != 5557 {
				t.Errorf("ip_port value = %#v, want 5557", u.Value)
			}
		}
	}

	if len(binds) != 1 {
		t.Fatalf("got %d binds, want 1", len(binds))
	}
	if got := binds[0].Left.String(); got != "pp_actual_X_EMCOVar.value" {
		t.Errorf("bind left = %q", got)
	}
	if got := binds[0].Right.String(); got != "actualX" {
		t.Errorf("bind right = %q", got)
	}

	if len(performs) != 1 {
		t.Fatalf("got %d performs, want 1", len(performs))
	}
	if got := performs[0].Target.String(); got != "pp_is_ready_EMCOMthd.operation" {
		t.Errorf("perform target = %q", got)
	}
	if len(performs[0].Members) != 1 {
		t.Errorf("perform body has %d members, want 1", len(performs[0].Members))
	}
}

func TestParseAbstractAndConjugation(t *testing.T) {
	src := `
abstract part def Driver;
part def P {
	port def V { in attribute value : String; }
}
part def M {
	port v : ~P::V;
	port w : P::V;
}
`
	f := parseOK(t, src)
	var driver *ast.Definition
	var conj, plain *ast.Usage
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Definition:
			if x.Name == "Driver" {
				driver = x
			}
		case *ast.Usage:
			if x.Name == "v" {
				conj = x
			}
			if x.Name == "w" {
				plain = x
			}
		}
		return true
	})
	if driver == nil || !driver.Abstract {
		t.Error("Driver should be abstract")
	}
	if conj == nil || conj.Type == nil || !conj.Type.Conjugated {
		t.Error("port v should have conjugated type")
	}
	if plain == nil || plain.Type == nil || plain.Type.Conjugated {
		t.Error("port w should not be conjugated")
	}
	if conj.Type.Name.String() != "P::V" {
		t.Errorf("conjugated type name = %q, want P::V", conj.Type.Name)
	}
}

func TestParseInterfaceAndConnect(t *testing.T) {
	src := `
package Channels {
	port def VarPort { in attribute value : String; }
	interface def VarChannel {
		end supplier : VarPort;
		end consumer : ~VarPort;
	}
	part def System {
		part a { port p : VarPort; }
		part b { port q : ~VarPort; }
		interface : VarChannel connect a.p to b.q;
		connect a.p to b.q;
	}
}
`
	f := parseOK(t, src)
	pkg, ok := f.Members[0].(*ast.Package)
	if !ok || pkg.Name != "Channels" {
		t.Fatalf("want package Channels, got %#v", f.Members[0])
	}
	var iface *ast.Definition
	var connects []*ast.Connect
	var ends []*ast.Usage
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Definition:
			if x.Kind == ast.DefInterface {
				iface = x
			}
		case *ast.Connect:
			connects = append(connects, x)
		case *ast.Usage:
			if x.Kind == ast.UseEnd {
				ends = append(ends, x)
			}
		}
		return true
	})
	if iface == nil || iface.Name != "VarChannel" {
		t.Fatal("interface def VarChannel not found")
	}
	if len(ends) != 2 {
		t.Errorf("got %d interface ends, want 2", len(ends))
	}
	if len(connects) != 2 {
		t.Fatalf("got %d connects, want 2", len(connects))
	}
	if connects[0].Type == nil || connects[0].Type.Name.String() != "VarChannel" {
		t.Errorf("typed connect lost its interface type: %#v", connects[0].Type)
	}
}

func TestParseImports(t *testing.T) {
	src := `
package A { part def X; }
package B {
	import A::*;
	private import A::X;
	part x : X;
}
`
	f := parseOK(t, src)
	pkgB := f.Members[1].(*ast.Package)
	var imports []*ast.Import
	for _, m := range pkgB.Members {
		if imp, ok := m.(*ast.Import); ok {
			imports = append(imports, imp)
		}
	}
	if len(imports) != 2 {
		t.Fatalf("got %d imports, want 2", len(imports))
	}
	if !imports[0].Wildcard || imports[0].Path.String() != "A" {
		t.Errorf("first import = %+v, want wildcard A::*", imports[0])
	}
	if !imports[1].Private || imports[1].Wildcard || imports[1].Path.String() != "A::X" {
		t.Errorf("second import = %+v, want private A::X", imports[1])
	}
}

func TestParseMultiplicities(t *testing.T) {
	src := `
part def W {
	ref part a [*];
	ref part b [3];
	ref part c [1..5];
	ref part d [0..*];
}
`
	f := parseOK(t, src)
	got := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		if u, ok := n.(*ast.Usage); ok && u.Multiplicity != nil {
			got[u.Name] = u.Multiplicity.String()
		}
		return true
	})
	want := map[string]string{"a": "[*]", "b": "[3]", "c": "[1..5]", "d": "[*]"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("multiplicity of %s = %s, want %s", k, got[k], v)
		}
	}
}

func TestParseErrorsRecover(t *testing.T) {
	src := `
part def Good1;
part def { }
part def Good2;
`
	f, err := ParseFile("bad.sysml", src)
	if err == nil {
		t.Fatal("want parse error")
	}
	names := map[string]bool{}
	for _, m := range f.Members {
		if d, ok := m.(*ast.Definition); ok {
			names[d.Name] = true
		}
	}
	if !names["Good1"] || !names["Good2"] {
		t.Errorf("recovery lost good definitions: %v", names)
	}
}

func TestParseErrorMessagesCarryPositions(t *testing.T) {
	_, err := ParseFile("pos.sysml", "part def X :> ;")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "pos.sysml:1:") {
		t.Errorf("error lacks file:line position: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
part def X {
	/* block
	   comment */
	attribute a : String; // trailing
}
`
	f := parseOK(t, src)
	if len(f.Members) != 1 {
		t.Fatalf("got %d members, want 1", len(f.Members))
	}
}

func TestParseValueTypes(t *testing.T) {
	src := `
part p {
	attribute s : String = 'text';
	attribute i : Integer = 42;
	attribute r : Real = 3.25;
	attribute b1 : Boolean = true;
	attribute b2 : Boolean = false;
	attribute ref_v : String = other.path;
}
`
	f := parseOK(t, src)
	vals := map[string]ast.Expr{}
	ast.Inspect(f, func(n ast.Node) bool {
		if u, ok := n.(*ast.Usage); ok && u.Value != nil {
			vals[u.Name] = u.Value
		}
		return true
	})
	if v, ok := vals["s"].(*ast.StringLit); !ok || v.Value != "text" {
		t.Errorf("s = %#v", vals["s"])
	}
	if v, ok := vals["i"].(*ast.IntLit); !ok || v.Value != 42 {
		t.Errorf("i = %#v", vals["i"])
	}
	if v, ok := vals["r"].(*ast.RealLit); !ok || v.Value != 3.25 {
		t.Errorf("r = %#v", vals["r"])
	}
	if v, ok := vals["b1"].(*ast.BoolLit); !ok || !v.Value {
		t.Errorf("b1 = %#v", vals["b1"])
	}
	if v, ok := vals["b2"].(*ast.BoolLit); !ok || v.Value {
		t.Errorf("b2 = %#v", vals["b2"])
	}
	if v, ok := vals["ref_v"].(*ast.FeatureRef); !ok || v.Path.String() != "other.path" {
		t.Errorf("ref_v = %#v", vals["ref_v"])
	}
}
