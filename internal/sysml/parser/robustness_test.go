package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
)

// TestParserNeverPanicsProperty: arbitrary input must never panic the
// parser; it either parses or reports errors.
func TestParserNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 2048 {
			src = src[:2048]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = ParseFile("fuzz.sysml", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnTokenSoup: sequences assembled from real language
// fragments stress the grammar paths more than random unicode.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	fragments := []string{
		"part", "def", "X", "{", "}", ";", ":>", ":>>", "::", "~", "[*]",
		"attribute", "port", "action", "ref", "abstract", "in", "out",
		"bind", "=", "'str'", "42", "3.14", "connect", "to", "perform",
		"interface", "end", "import", "package", ".", ",", "(", ")",
	}
	f := func(picks []uint8) bool {
		if len(picks) > 60 {
			picks = picks[:60]
		}
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(fragments[int(p)%len(fragments)])
			b.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", b.String(), r)
			}
		}()
		_, _ = ParseFile("soup.sysml", b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParserAlwaysTerminatesOnUnclosedBodies guards the recovery loop
// against non-progress hangs.
func TestParserAlwaysTerminatesOnUnclosedBodies(t *testing.T) {
	for _, src := range []string{
		"part def X {",
		"package P { part def Y { attribute a",
		"part x : T { bind a.b = ",
		strings.Repeat("{", 100),
		strings.Repeat("part def X { ", 50),
		"} } }",
		":>> ",
		"connect a to",
	} {
		f, _ := ParseFile("t.sysml", src)
		if f == nil {
			t.Errorf("nil file for %q", src)
		}
	}
}

// TestDeepNesting exercises the recursive-descent depth on a hierarchy
// much deeper than ISA-95's seven levels.
func TestDeepNesting(t *testing.T) {
	depth := 200
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("part def L")
		b.WriteString(strings.Repeat("x", 1)) // distinct names not needed across scopes
		b.WriteString(" {\n")
	}
	b.WriteString("attribute deep : String;\n")
	for i := 0; i < depth; i++ {
		b.WriteString("}\n")
	}
	f, err := ParseFile("deep.sysml", b.String())
	if err != nil {
		t.Fatal(err)
	}
	count := ast.CountKind(f, func(n ast.Node) bool {
		_, ok := n.(*ast.Definition)
		return ok
	})
	if count != depth {
		t.Errorf("definitions = %d, want %d", count, depth)
	}
}
