// Package lexer implements the scanner for the SysML v2 textual notation
// subset. It converts UTF-8 source text into a stream of tokens, handling
// line and block comments, single- and double-quoted string literals,
// integer and real literals, qualified-name punctuation ("::", "..") and
// the relationship shorthands ":>" (specializes) and ":>>" (redefines).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// Error is a lexical error bound to a source position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans SysML v2 source text.
type Lexer struct {
	src      string
	file     string
	offset   int // byte offset of current rune
	rdOffset int // byte offset after current rune
	ch       rune
	line     int
	col      int // column of current rune (1-based)

	// KeepComments controls whether Comment tokens are emitted or skipped.
	KeepComments bool

	errs []*Error
}

const eofRune = -1

// New returns a lexer over src; file is used in positions and errors.
func New(file, src string) *Lexer {
	l := &Lexer{src: src, file: file, line: 1, col: 0}
	l.next()
	return l
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Position, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// next advances to the next rune.
func (l *Lexer) next() {
	if l.rdOffset >= len(l.src) {
		l.offset = len(l.src)
		l.ch = eofRune
		return
	}
	if l.ch == '\n' {
		l.line++
		l.col = 0
	}
	r, w := rune(l.src[l.rdOffset]), 1
	if r >= utf8.RuneSelf {
		r, w = utf8.DecodeRuneInString(l.src[l.rdOffset:])
	}
	l.offset = l.rdOffset
	l.rdOffset += w
	l.ch = r
	l.col++
}

func (l *Lexer) peek() rune {
	if l.rdOffset >= len(l.src) {
		return eofRune
	}
	r := rune(l.src[l.rdOffset])
	if r >= utf8.RuneSelf {
		r, _ = utf8.DecodeRuneInString(l.src[l.rdOffset:])
	}
	return r
}

func (l *Lexer) pos() token.Position {
	return token.Position{File: l.file, Offset: l.offset, Line: l.line, Column: l.col}
}

func isIdentStart(r rune) bool {
	// ASCII fast path: model text is overwhelmingly ASCII, and the unicode
	// table lookups dominate the scan otherwise.
	if r < utf8.RuneSelf {
		return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
	}
	return unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	if r < utf8.RuneSelf {
		return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(r rune) bool {
	if r < utf8.RuneSelf {
		return '0' <= r && r <= '9'
	}
	return unicode.IsDigit(r)
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	for {
		l.skipSpace()
		pos := l.pos()
		switch {
		case l.ch == eofRune:
			return token.Token{Kind: token.EOF, Pos: pos}
		case isIdentStart(l.ch):
			lit := l.scanIdent()
			kind := token.Lookup(lit)
			return token.Token{Kind: kind, Lit: lit, Pos: pos}
		case isDigit(l.ch):
			kind, lit := l.scanNumber()
			return token.Token{Kind: kind, Lit: lit, Pos: pos}
		case l.ch == '\'' || l.ch == '"':
			lit, ok := l.scanString(l.ch)
			if !ok {
				l.errorf(pos, "unterminated string literal")
			}
			return token.Token{Kind: token.String, Lit: lit, Pos: pos}
		case l.ch == '/':
			if l.peek() == '/' {
				lit := l.scanLineComment()
				if l.KeepComments {
					return token.Token{Kind: token.Comment, Lit: lit, Pos: pos}
				}
				continue
			}
			if l.peek() == '*' {
				lit, ok := l.scanBlockComment()
				if !ok {
					l.errorf(pos, "unterminated block comment")
				}
				if l.KeepComments {
					return token.Token{Kind: token.Comment, Lit: lit, Pos: pos}
				}
				continue
			}
			l.errorf(pos, "unexpected character %q", l.ch)
			l.next()
			return token.Token{Kind: token.Illegal, Lit: "/", Pos: pos}
		default:
			return l.scanOperator(pos)
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.ch == ' ' || l.ch == '\t' || l.ch == '\n' || l.ch == '\r' {
		l.next()
	}
}

func (l *Lexer) scanIdent() string {
	start := l.offset
	for isIdentPart(l.ch) {
		l.next()
	}
	return l.src[start:l.offset]
}

func (l *Lexer) scanNumber() (token.Kind, string) {
	start := l.offset
	kind := token.Int
	for isDigit(l.ch) {
		l.next()
	}
	// A real literal has a fractional part: "3.14". Do not consume ".." of
	// a multiplicity range "0..5".
	if l.ch == '.' && l.peek() != '.' && isDigit(l.peek()) {
		kind = token.Real
		l.next()
		for isDigit(l.ch) {
			l.next()
		}
	}
	if l.ch == 'e' || l.ch == 'E' {
		save := l.offset
		l.next()
		if l.ch == '+' || l.ch == '-' {
			l.next()
		}
		if isDigit(l.ch) {
			kind = token.Real
			for isDigit(l.ch) {
				l.next()
			}
		} else {
			// Not an exponent after all ("5e" would be invalid anyway, but
			// an identifier may follow, e.g. "5end" is "5" "end").
			l.rewind(save)
		}
	}
	return kind, l.src[start:l.offset]
}

// rewind restores scanning to a saved byte offset on the current line.
// Only used for one-rune lookahead backtracking within a line.
func (l *Lexer) rewind(offset int) {
	l.rdOffset = offset
	// Recompute column conservatively: count back from line start.
	lineStart := strings.LastIndexByte(l.src[:offset], '\n') + 1
	l.col = offset - lineStart
	l.ch = 0 // force next() to land on offset
	l.next()
}

func (l *Lexer) scanString(quote rune) (string, bool) {
	var b strings.Builder
	l.next() // consume opening quote
	for {
		switch l.ch {
		case eofRune, '\n':
			return b.String(), false
		case '\\':
			l.next()
			switch l.ch {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'', '"':
				b.WriteRune(l.ch)
			default:
				b.WriteByte('\\')
				if l.ch != eofRune {
					b.WriteRune(l.ch)
				}
			}
			l.next()
		case quote:
			l.next()
			return b.String(), true
		default:
			b.WriteRune(l.ch)
			l.next()
		}
	}
}

func (l *Lexer) scanLineComment() string {
	start := l.offset
	for l.ch != '\n' && l.ch != eofRune {
		l.next()
	}
	return l.src[start:l.offset]
}

func (l *Lexer) scanBlockComment() (string, bool) {
	start := l.offset
	l.next() // '/'
	l.next() // '*'
	for {
		if l.ch == eofRune {
			return l.src[start:l.offset], false
		}
		if l.ch == '*' && l.peek() == '/' {
			l.next()
			l.next()
			return l.src[start:l.offset], true
		}
		l.next()
	}
}

func (l *Lexer) scanOperator(pos token.Position) token.Token {
	ch := l.ch
	l.next()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch ch {
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case '[':
		return mk(token.LBrack)
	case ']':
		return mk(token.RBrack)
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case ';':
		return mk(token.Semi)
	case ',':
		return mk(token.Comma)
	case '=':
		return mk(token.Assign)
	case '*':
		return mk(token.Star)
	case '~':
		return mk(token.Tilde)
	case '.':
		if l.ch == '.' {
			l.next()
			return mk(token.DotDot)
		}
		return mk(token.Dot)
	case ':':
		switch l.ch {
		case ':':
			l.next()
			return mk(token.ColonColon)
		case '>':
			l.next()
			if l.ch == '>' {
				l.next()
				return mk(token.Redefines_)
			}
			return mk(token.Specializes_)
		}
		// ":»" (redefines shorthand in the paper's listings) — accept the
		// unicode guillemet as an alias for ":>>".
		if l.ch == '»' {
			l.next()
			return mk(token.Redefines_)
		}
		return mk(token.Colon)
	}
	l.errorf(pos, "unexpected character %q", ch)
	return token.Token{Kind: token.Illegal, Lit: string(ch), Pos: pos}
}

// ScanAll lexes the whole input, excluding the trailing EOF token.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	// Pre-size on the observed token density of factory models (~5 source
	// bytes per token): repeated append-regrowth of the token slice used to
	// dominate whole-file scans (tokens are large values, so every regrowth
	// copies the entire backing array).
	toks := make([]token.Token, 0, len(src)/5+16)
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			return toks, l.errs
		}
		toks = append(toks, t)
	}
}
