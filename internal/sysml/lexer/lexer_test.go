package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("test", src)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds(t, "{ } [ ] ( ) ; : :: , . .. = * ~ :> :>>")
	want := []token.Kind{
		token.LBrace, token.RBrace, token.LBrack, token.RBrack,
		token.LParen, token.RParen, token.Semi, token.Colon,
		token.ColonColon, token.Comma, token.Dot, token.DotDot,
		token.Assign, token.Star, token.Tilde,
		token.Specializes_, token.Redefines_,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, errs := ScanAll("test", "part def partial Defined bind bindx")
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	want := []token.Kind{token.KwPart, token.KwDef, token.Ident, token.Ident, token.KwBind, token.Ident}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d (%s) = %v, want %v", i, toks[i].Lit, toks[i].Kind, k)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]struct {
		kind token.Kind
		lit  string
	}{
		"42":     {token.Int, "42"},
		"0":      {token.Int, "0"},
		"3.14":   {token.Real, "3.14"},
		"1e5":    {token.Real, "1e5"},
		"2.5e-3": {token.Real, "2.5e-3"},
		"1E+2":   {token.Real, "1E+2"},
	}
	for src, want := range cases {
		toks, errs := ScanAll("t", src)
		if len(errs) > 0 {
			t.Errorf("%q: %v", src, errs)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != want.kind || toks[0].Lit != want.lit {
			t.Errorf("%q -> %v, want %v(%q)", src, toks, want.kind, want.lit)
		}
	}
}

func TestMultiplicityRangeNotReal(t *testing.T) {
	// "0..5" must lex as Int DotDot Int, not a real literal.
	got := kinds(t, "[0..5]")
	want := []token.Kind{token.LBrack, token.Int, token.DotDot, token.Int, token.RBrack}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, errs := ScanAll("t", `'single' "double" 'with \'escape\'' 'a\nb'`)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	want := []string{"single", "double", "with 'escape'", "a\nb"}
	for i, w := range want {
		if toks[i].Kind != token.String || toks[i].Lit != w {
			t.Errorf("string %d = %v(%q), want %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := ScanAll("t", "'never ends")
	if len(errs) == 0 {
		t.Error("want error for unterminated string")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("t", "/* never ends")
	if len(errs) == 0 {
		t.Error("want error for unterminated comment")
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	got := kinds(t, "part // comment\n/* block */ def")
	want := []token.Kind{token.KwPart, token.KwDef}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v", got)
	}
}

func TestCommentsKept(t *testing.T) {
	l := New("t", "part // c\n")
	l.KeepComments = true
	var toks []token.Token
	for {
		tk := l.Next()
		if tk.Kind == token.EOF {
			break
		}
		toks = append(toks, tk)
	}
	if len(toks) != 2 || toks[1].Kind != token.Comment || !strings.HasPrefix(toks[1].Lit, "//") {
		t.Errorf("toks = %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("file.sysml", "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "file.sysml:2:3" {
		t.Errorf("Pos.String = %q", got)
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := ScanAll("t", "a ¤ b")
	if len(errs) == 0 {
		t.Error("want error for illegal character")
	}
	// Lexing continues past the bad rune.
	idents := 0
	for _, tk := range toks {
		if tk.Kind == token.Ident {
			idents++
		}
	}
	if idents != 2 {
		t.Errorf("idents = %d, want 2", idents)
	}
}

func TestGuillemetRedefines(t *testing.T) {
	got := kinds(t, ":» x")
	if got[0] != token.Redefines_ {
		t.Errorf(":» lexed as %v, want :>>", got[0])
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks, errs := ScanAll("t", "müller_θ2")
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if len(toks) != 1 || toks[0].Kind != token.Ident || toks[0].Lit != "müller_θ2" {
		t.Errorf("toks = %v", toks)
	}
}

// TestLexerNeverPanicsProperty feeds arbitrary strings; the lexer must
// terminate without panicking and produce a finite token stream.
func TestLexerNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 4096 {
			src = src[:4096]
		}
		toks, _ := ScanAll("fuzz", src)
		// Token count is bounded by input length plus one.
		return len(toks) <= len(src)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIdentifierRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		name := "id_" + strings.Repeat("x", int(n%40)+1)
		toks, errs := ScanAll("t", name)
		return len(errs) == 0 && len(toks) == 1 && toks[0].Lit == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
