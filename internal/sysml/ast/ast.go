// Package ast declares the syntax tree produced by the SysML v2 parser.
//
// The tree mirrors the textual notation's definition/usage paradigm:
// Definition nodes introduce reusable types (part def, port def, ...) and
// Usage nodes instantiate or reference them in context (part, port, ...).
// Relationship shorthands (":>" specialization, ":>>" redefinition) are
// stored on the owning node and resolved by package sema.
package ast

import (
	"strings"

	"github.com/smartfactory/sysml2conf/internal/sysml/token"
)

// Node is implemented by every syntax-tree node.
type Node interface {
	Pos() token.Position
}

// Member is a node that may appear inside a package or body block.
type Member interface {
	Node
	memberNode()
}

// ---------------------------------------------------------------------------
// Names

// QualifiedName is a "::"-separated name path such as ISA95::Topology.
type QualifiedName struct {
	Parts    []string
	Position token.Position
}

func (q *QualifiedName) Pos() token.Position { return q.Position }

// String renders the canonical "A::B::C" spelling.
func (q *QualifiedName) String() string { return strings.Join(q.Parts, "::") }

// Base returns the last segment of the qualified name.
func (q *QualifiedName) Base() string {
	if len(q.Parts) == 0 {
		return ""
	}
	return q.Parts[len(q.Parts)-1]
}

// FeaturePath is a "."-separated feature chain such as driver.params.ip,
// optionally rooted at a qualified name.
type FeaturePath struct {
	Parts    []string
	Position token.Position
}

func (f *FeaturePath) Pos() token.Position { return f.Position }

// String renders the canonical dotted spelling.
func (f *FeaturePath) String() string { return strings.Join(f.Parts, ".") }

// ---------------------------------------------------------------------------
// Kinds, directions, multiplicity

// DefKind discriminates definition nodes.
type DefKind int

const (
	DefPart DefKind = iota
	DefAttribute
	DefPort
	DefAction
	DefInterface
	DefConnection
	DefItem
)

var defKindNames = [...]string{"part", "attribute", "port", "action", "interface", "connection", "item"}

func (k DefKind) String() string {
	if int(k) < len(defKindNames) {
		return defKindNames[k]
	}
	return "def?"
}

// UsageKind discriminates usage nodes.
type UsageKind int

const (
	UsePart UsageKind = iota
	UseAttribute
	UsePort
	UseAction
	UseInterface
	UseConnection
	UseEnd  // interface end
	UseItem // item usage
)

var usageKindNames = [...]string{"part", "attribute", "port", "action", "interface", "connection", "end", "item"}

func (k UsageKind) String() string {
	if int(k) < len(usageKindNames) {
		return usageKindNames[k]
	}
	return "usage?"
}

// Direction is a feature's data-flow direction.
type Direction int

const (
	DirNone Direction = iota
	DirIn
	DirOut
	DirInOut
)

func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return ""
}

// Multiplicity is a "[lower..upper]" bound; Upper == Many means "*".
type Multiplicity struct {
	Lower    int
	Upper    int // Many for "*"
	Position token.Position
}

// Many is the unbounded upper multiplicity ("*").
const Many = -1

func (m *Multiplicity) Pos() token.Position { return m.Position }

// String renders "[n]", "[n..m]" or "[*]".
func (m *Multiplicity) String() string {
	switch {
	case m.Lower == 0 && m.Upper == Many:
		return "[*]"
	case m.Upper == Many:
		return "[" + itoa(m.Lower) + "..*]"
	case m.Lower == m.Upper:
		return "[" + itoa(m.Lower) + "]"
	default:
		return "[" + itoa(m.Lower) + ".." + itoa(m.Upper) + "]"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a literal or a feature reference appearing after "=".
type Expr interface {
	Node
	exprNode()
}

// StringLit is a quoted string literal.
type StringLit struct {
	Value    string
	Position token.Position
}

// IntLit is an integer literal.
type IntLit struct {
	Value    int64
	Position token.Position
}

// RealLit is a real (floating point) literal.
type RealLit struct {
	Value    float64
	Position token.Position
}

// BoolLit is "true" or "false".
type BoolLit struct {
	Value    bool
	Position token.Position
}

// FeatureRef is an expression referencing another feature by path.
type FeatureRef struct {
	Path *FeaturePath
}

func (e *StringLit) Pos() token.Position  { return e.Position }
func (e *IntLit) Pos() token.Position     { return e.Position }
func (e *RealLit) Pos() token.Position    { return e.Position }
func (e *BoolLit) Pos() token.Position    { return e.Position }
func (e *FeatureRef) Pos() token.Position { return e.Path.Position }

func (*StringLit) exprNode()  {}
func (*IntLit) exprNode()     {}
func (*RealLit) exprNode()    {}
func (*BoolLit) exprNode()    {}
func (*FeatureRef) exprNode() {}

// ---------------------------------------------------------------------------
// Structure

// File is a parsed compilation unit.
type File struct {
	Name     string // source file name
	Members  []Member
	Position token.Position
}

func (f *File) Pos() token.Position { return f.Position }

// Package groups members under a namespace.
type Package struct {
	Name     string
	Members  []Member
	Doc      string
	Position token.Position
}

// Import brings a package's (or element's) names into scope.
// Wildcard imports end in "::*"; Recursive imports end in "::**".
type Import struct {
	Private   bool
	Path      *QualifiedName
	Wildcard  bool
	Recursive bool
	Position  token.Position
}

// TypeRef references a definition as a usage's type; Conjugated records a
// leading "~" which flips feature directions.
type TypeRef struct {
	Conjugated bool
	Name       *QualifiedName
}

func (t *TypeRef) Pos() token.Position { return t.Name.Position }

// String renders the reference, including the conjugation mark.
func (t *TypeRef) String() string {
	if t.Conjugated {
		return "~" + t.Name.String()
	}
	return t.Name.String()
}

// Definition is a part/attribute/port/action/interface/connection "def".
type Definition struct {
	Kind        DefKind
	Abstract    bool
	Name        string
	Specializes []*QualifiedName // ":>" / "specializes"
	Members     []Member
	Doc         string
	Position    token.Position
}

// Usage instantiates or references a definition in context. The same node
// covers plain usages ("part emco : EMCO { ... }"), referential usages
// ("ref part Machine[*];"), parameters of actions ("out ready : Boolean;"),
// redefinitions (":>> ip = '10...';") and interface ends.
type Usage struct {
	Kind UsageKind
	// ImplicitKind marks usages written without their kind keyword
	// (directional parameters like "out ready : Boolean;"); the printer
	// restores the short form.
	ImplicitKind bool
	Direction    Direction
	Ref          bool
	Abstract     bool
	Name         string // may be "" for anonymous redefinitions
	Type         *TypeRef
	Multiplicity *Multiplicity
	Specializes  []*QualifiedName // ":>" on a usage (subsetting/specialization)
	Redefines    []*FeaturePath   // ":>>" / "redefines"
	Subsets      []*FeaturePath   // "subsets"
	Value        Expr             // "= expr"
	Members      []Member
	Doc          string
	Position     token.Position
}

// Bind is a binding connector: "bind a.b = c;".
type Bind struct {
	Left     *FeaturePath
	Right    *FeaturePath
	Position token.Position
}

// Connect is a connection usage: "connect a.b to c.d;". When written as an
// interface usage ("interface x : IDef connect a to b;") the usage wraps it.
type Connect struct {
	Name     string // optional connection name
	Type     *TypeRef
	From     *FeaturePath
	To       *FeaturePath
	Position token.Position
}

// Perform invokes an action through a port: "perform p.operation { ... }".
// Body members are parameter bindings (usages with direction and value).
type Perform struct {
	Target   *FeaturePath
	Members  []Member
	Position token.Position
}

// Doc is a standalone documentation comment: doc /* ... */.
type Doc struct {
	Text     string
	Position token.Position
}

// Comment is a retained non-doc comment.
type Comment struct {
	Text     string
	Position token.Position
}

func (p *Package) Pos() token.Position    { return p.Position }
func (i *Import) Pos() token.Position     { return i.Position }
func (d *Definition) Pos() token.Position { return d.Position }
func (u *Usage) Pos() token.Position      { return u.Position }
func (b *Bind) Pos() token.Position       { return b.Position }
func (c *Connect) Pos() token.Position    { return c.Position }
func (p *Perform) Pos() token.Position    { return p.Position }
func (d *Doc) Pos() token.Position        { return d.Position }
func (c *Comment) Pos() token.Position    { return c.Position }

func (*Package) memberNode()    {}
func (*Import) memberNode()     {}
func (*Definition) memberNode() {}
func (*Usage) memberNode()      {}
func (*Bind) memberNode()       {}
func (*Connect) memberNode()    {}
func (*Perform) memberNode()    {}
func (*Doc) memberNode()        {}
func (*Comment) memberNode()    {}

// ---------------------------------------------------------------------------
// Traversal

// Inspect walks the subtree rooted at n depth-first, calling fn for each
// node. If fn returns false the node's children are skipped.
func Inspect(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, m := range x.Members {
			Inspect(m, fn)
		}
	case *Package:
		for _, m := range x.Members {
			Inspect(m, fn)
		}
	case *Definition:
		for _, m := range x.Members {
			Inspect(m, fn)
		}
	case *Usage:
		for _, m := range x.Members {
			Inspect(m, fn)
		}
	case *Perform:
		for _, m := range x.Members {
			Inspect(m, fn)
		}
	}
}

// CountKind returns the number of nodes in the subtree for which pred is true.
func CountKind(n Node, pred func(Node) bool) int {
	count := 0
	Inspect(n, func(n Node) bool {
		if pred(n) {
			count++
		}
		return true
	})
	return count
}
