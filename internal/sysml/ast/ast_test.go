package ast

import (
	"testing"
	"testing/quick"
)

func TestQualifiedName(t *testing.T) {
	q := &QualifiedName{Parts: []string{"A", "B", "C"}}
	if q.String() != "A::B::C" {
		t.Errorf("String = %q", q.String())
	}
	if q.Base() != "C" {
		t.Errorf("Base = %q", q.Base())
	}
	empty := &QualifiedName{}
	if empty.Base() != "" || empty.String() != "" {
		t.Error("empty qualified name")
	}
}

func TestFeaturePath(t *testing.T) {
	f := &FeaturePath{Parts: []string{"drv", "params", "ip"}}
	if f.String() != "drv.params.ip" {
		t.Errorf("String = %q", f.String())
	}
}

func TestMultiplicityString(t *testing.T) {
	cases := []struct {
		m    Multiplicity
		want string
	}{
		{Multiplicity{Lower: 0, Upper: Many}, "[*]"},
		{Multiplicity{Lower: 2, Upper: Many}, "[2..*]"},
		{Multiplicity{Lower: 3, Upper: 3}, "[3]"},
		{Multiplicity{Lower: 1, Upper: 5}, "[1..5]"},
		{Multiplicity{Lower: 0, Upper: 0}, "[0]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestItoaMatchesStdlibProperty(t *testing.T) {
	f := func(lo uint16, span uint8) bool {
		m := Multiplicity{Lower: int(lo), Upper: int(lo) + int(span)}
		want := "[" + itoaRef(int(lo)) + ".." + itoaRef(int(lo)+int(span)) + "]"
		if int(lo) == int(lo)+int(span) {
			want = "[" + itoaRef(int(lo)) + "]"
		}
		if int(lo) == 0 && m.Upper == Many {
			want = "[*]"
		}
		return m.String() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoaRef(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	if neg {
		return "-" + digits
	}
	return digits
}

func TestKindStrings(t *testing.T) {
	if DefPart.String() != "part" || DefPort.String() != "port" || DefInterface.String() != "interface" {
		t.Error("def kind names wrong")
	}
	if UseAttribute.String() != "attribute" || UseEnd.String() != "end" {
		t.Error("usage kind names wrong")
	}
	if DirIn.String() != "in" || DirOut.String() != "out" || DirInOut.String() != "inout" || DirNone.String() != "" {
		t.Error("direction names wrong")
	}
}

func TestInspectSkipsChildrenOnFalse(t *testing.T) {
	inner := &Usage{Kind: UseAttribute, Name: "x"}
	outer := &Definition{Kind: DefPart, Name: "P", Members: []Member{inner}}
	file := &File{Members: []Member{outer}}

	var visited []string
	Inspect(file, func(n Node) bool {
		switch x := n.(type) {
		case *Definition:
			visited = append(visited, "def:"+x.Name)
			return false // do not descend
		case *Usage:
			visited = append(visited, "use:"+x.Name)
		}
		return true
	})
	if len(visited) != 1 || visited[0] != "def:P" {
		t.Errorf("visited = %v", visited)
	}
}

func TestInspectPerformBody(t *testing.T) {
	p := &Perform{
		Target:  &FeaturePath{Parts: []string{"port", "op"}},
		Members: []Member{&Usage{Kind: UseAttribute, Name: "ready"}},
	}
	count := CountKind(p, func(n Node) bool {
		_, ok := n.(*Usage)
		return ok
	})
	if count != 1 {
		t.Errorf("usages under perform = %d", count)
	}
}

func TestCountKind(t *testing.T) {
	file := &File{Members: []Member{
		&Package{Name: "P", Members: []Member{
			&Definition{Kind: DefPart, Name: "A"},
			&Definition{Kind: DefPart, Name: "B", Members: []Member{
				&Usage{Kind: UsePart, Name: "u1"},
				&Usage{Kind: UseAttribute, Name: "a1"},
			}},
		}},
	}}
	defs := CountKind(file, func(n Node) bool { _, ok := n.(*Definition); return ok })
	if defs != 2 {
		t.Errorf("defs = %d", defs)
	}
	usages := CountKind(file, func(n Node) bool { _, ok := n.(*Usage); return ok })
	if usages != 2 {
		t.Errorf("usages = %d", usages)
	}
}

func TestTypeRefString(t *testing.T) {
	tr := &TypeRef{Name: &QualifiedName{Parts: []string{"D", "V"}}}
	if tr.String() != "D::V" {
		t.Errorf("String = %q", tr.String())
	}
	tr.Conjugated = true
	if tr.String() != "~D::V" {
		t.Errorf("conjugated String = %q", tr.String())
	}
}

func TestInspectNil(t *testing.T) {
	// Must not panic.
	Inspect(nil, func(Node) bool { return true })
}
