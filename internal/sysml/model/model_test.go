package model

import (
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
	"github.com/smartfactory/sysml2conf/internal/sysml/sema"
)

func resolve(t *testing.T, src string) *sema.Model {
	t.Helper()
	f, err := parser.ParseFile("t.sysml", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sema.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCountStats(t *testing.T) {
	m := resolve(t, `
package P {
	part def D {
		port def V { in attribute value : Anything; }
	}
	part x : D {
		attribute a : Double;
		attribute b : String;
		port p : ~D::V;
		bind p.value = a;
		part nested {
			attribute c : Integer;
		}
		action act { out r : Boolean; }
	}
}
`)
	x := m.FindUsage("x")
	s := Count(x)
	if s.PartInstances != 2 { // x + nested
		t.Errorf("parts = %d", s.PartInstances)
	}
	if s.AttributeInstances != 4 { // a, b, c, r (action param)
		t.Errorf("attrs = %d", s.AttributeInstances)
	}
	if s.PortInstances != 1 {
		t.Errorf("ports = %d", s.PortInstances)
	}
	if s.ActionInstances != 1 {
		t.Errorf("actions = %d", s.ActionInstances)
	}
	if s.Binds != 1 {
		t.Errorf("binds = %d", s.Binds)
	}

	// Whole-model stats include the definitions.
	whole := Count(m.Root)
	if whole.PartDefs < 2 { // D + V (port def)
		t.Errorf("defs = %d", whole.PartDefs)
	}

	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.AttributeInstances != 8 {
		t.Errorf("Add: %d", sum.AttributeInstances)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvalLiterals(t *testing.T) {
	cases := []struct {
		expr ast.Expr
		want Value
	}{
		{&ast.StringLit{Value: "x"}, Value{Kind: StringVal, Str: "x"}},
		{&ast.IntLit{Value: 42}, Value{Kind: IntVal, Int: 42}},
		{&ast.RealLit{Value: 2.5}, Value{Kind: RealVal, Real: 2.5}},
		{&ast.BoolLit{Value: true}, Value{Kind: BoolVal, Bool: true}},
	}
	for _, c := range cases {
		if got := Eval(c.expr); got != c.want {
			t.Errorf("Eval(%#v) = %+v, want %+v", c.expr, got, c.want)
		}
	}
	ref := Eval(&ast.FeatureRef{Path: &ast.FeaturePath{Parts: []string{"a", "b"}}})
	if ref.Kind != RefVal || ref.Ref != "a.b" {
		t.Errorf("ref = %+v", ref)
	}
	if Eval(nil).IsValid() {
		t.Error("nil expr should be invalid")
	}
}

func TestValueStringAndInterface(t *testing.T) {
	cases := []struct {
		v    Value
		str  string
		ifce any
	}{
		{Value{Kind: StringVal, Str: "s"}, "s", "s"},
		{Value{Kind: IntVal, Int: 7}, "7", int64(7)},
		{Value{Kind: RealVal, Real: 1.5}, "1.5", 1.5},
		{Value{Kind: BoolVal, Bool: true}, "true", true},
		{Value{}, "", nil},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String(%+v) = %q", c.v, got)
		}
		if got := c.v.Interface(); got != c.ifce {
			t.Errorf("Interface(%+v) = %v", c.v, got)
		}
	}
}

func TestResolvedAttributes(t *testing.T) {
	m := resolve(t, `
part def Params {
	attribute ip : String;
	attribute ip_port : Integer = 4840;
	attribute mode : String = 'auto';
}
part p : Params {
	:>> ip = '10.0.0.1';
	:>> mode = 'manual';
	attribute extra : Integer = 9;
}
`)
	p := m.FindUsage("p")
	attrs := ResolvedAttributes(p)
	if attrs["ip"].Str != "10.0.0.1" {
		t.Errorf("ip = %+v", attrs["ip"])
	}
	if attrs["ip_port"].Int != 4840 { // inherited default
		t.Errorf("ip_port = %+v", attrs["ip_port"])
	}
	if attrs["mode"].Str != "manual" { // redefinition wins over default
		t.Errorf("mode = %+v", attrs["mode"])
	}
	if attrs["extra"].Int != 9 { // direct member with value
		t.Errorf("extra = %+v", attrs["extra"])
	}
}

func TestAttributesOfType(t *testing.T) {
	m := resolve(t, `
part def Base { attribute a : String; }
part def Derived :> Base {
	attribute b : Integer = 3;
	in attribute c : Double;
}
`)
	d := m.FindDef("Derived")
	attrs := AttributesOfType(d)
	if len(attrs) != 3 {
		t.Fatalf("attrs = %+v", attrs)
	}
	byName := map[string]Attribute{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	if byName["a"].TypeName != "String" {
		t.Errorf("a = %+v", byName["a"])
	}
	if byName["b"].Default.Int != 3 {
		t.Errorf("b = %+v", byName["b"])
	}
	if byName["c"].Direction != ast.DirIn {
		t.Errorf("c = %+v", byName["c"])
	}
}

func TestPartsTypedAndCollect(t *testing.T) {
	m := resolve(t, `
abstract part def Machine;
part def Robot :> Machine;
part def Other;
part wc {
	part r1 : Robot;
	part r2 : Robot;
	part o : Other;
}
`)
	wc := m.FindUsage("wc")
	robots := PartsTyped(wc, "Machine")
	if len(robots) != 2 {
		t.Errorf("robots = %d", len(robots))
	}
	all := Collect(m.Root, func(e *sema.Element) bool { return e.Kind == sema.KindPartUsage })
	if len(all) != 4 {
		t.Errorf("part usages = %d", len(all))
	}
	first := FindFirst(m.Root, func(e *sema.Element) bool { return e.Name == "r2" })
	if first == nil || first.Name != "r2" {
		t.Errorf("FindFirst = %v", first)
	}
	if FindFirst(m.Root, func(e *sema.Element) bool { return e.Name == "zzz" }) != nil {
		t.Error("FindFirst found phantom")
	}
}
