// Package model provides the instance-level view over a resolved SysML v2
// element graph: element statistics (the quantities reported in the paper's
// Table I), literal value evaluation, and resolution of redefined attribute
// values inside instantiated parts.
package model

import (
	"fmt"
	"strconv"

	"github.com/smartfactory/sysml2conf/internal/sysml/ast"
	"github.com/smartfactory/sysml2conf/internal/sysml/sema"
)

// Stats aggregates element counts over a model subtree. The fields mirror
// the columns of the paper's Table I.
type Stats struct {
	PartDefs           int // part/port/action/interface/connection/attribute defs
	PartInstances      int // part usages
	AttributeInstances int // attribute usages (including redefinition usages)
	PortInstances      int // port usages (including interface ends)
	ActionInstances    int // action usages
	Binds              int
	Connects           int
	Performs           int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PartDefs += other.PartDefs
	s.PartInstances += other.PartInstances
	s.AttributeInstances += other.AttributeInstances
	s.PortInstances += other.PortInstances
	s.ActionInstances += other.ActionInstances
	s.Binds += other.Binds
	s.Connects += other.Connects
	s.Performs += other.Performs
}

// String renders a compact one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("defs=%d parts=%d attrs=%d ports=%d actions=%d binds=%d connects=%d",
		s.PartDefs, s.PartInstances, s.AttributeInstances, s.PortInstances,
		s.ActionInstances, s.Binds, s.Connects)
}

// Count walks the subtree rooted at e and tallies element statistics.
// The root element itself is included.
func Count(e *sema.Element) Stats {
	var s Stats
	if e == nil {
		return s
	}
	e.Walk(func(x *sema.Element) bool {
		switch x.Kind {
		case sema.KindPartDef, sema.KindPortDef, sema.KindActionDef,
			sema.KindInterfaceDef, sema.KindConnectionDef, sema.KindAttributeDef:
			s.PartDefs++
		case sema.KindPartUsage:
			s.PartInstances++
		case sema.KindAttributeUsage:
			s.AttributeInstances++
		case sema.KindPortUsage, sema.KindEndUsage:
			s.PortInstances++
		case sema.KindActionUsage:
			s.ActionInstances++
		case sema.KindBind:
			s.Binds++
		case sema.KindConnect:
			s.Connects++
		case sema.KindPerform:
			s.Performs++
		}
		return true
	})
	return s
}

// ---------------------------------------------------------------------------
// Values

// ValueKind discriminates evaluated literal values.
type ValueKind int

const (
	// Invalid marks the zero Value.
	Invalid ValueKind = iota
	// StringVal is a string literal value.
	StringVal
	// IntVal is an integer literal value.
	IntVal
	// RealVal is a floating-point literal value.
	RealVal
	// BoolVal is a boolean literal value.
	BoolVal
	// RefVal is an unevaluated feature reference.
	RefVal
)

// Value is an evaluated attribute value.
type Value struct {
	Kind ValueKind
	Str  string
	Int  int64
	Real float64
	Bool bool
	Ref  string // dotted path for RefVal
}

// IsValid reports whether the value carries data.
func (v Value) IsValid() bool { return v.Kind != Invalid }

// String renders the value in configuration-file form.
func (v Value) String() string {
	switch v.Kind {
	case StringVal:
		return v.Str
	case IntVal:
		return strconv.FormatInt(v.Int, 10)
	case RealVal:
		return strconv.FormatFloat(v.Real, 'g', -1, 64)
	case BoolVal:
		return strconv.FormatBool(v.Bool)
	case RefVal:
		return v.Ref
	}
	return ""
}

// Interface returns the value as a plain Go value for JSON encoding.
func (v Value) Interface() any {
	switch v.Kind {
	case StringVal:
		return v.Str
	case IntVal:
		return v.Int
	case RealVal:
		return v.Real
	case BoolVal:
		return v.Bool
	case RefVal:
		return v.Ref
	}
	return nil
}

// Eval evaluates a literal expression into a Value.
func Eval(e ast.Expr) Value {
	switch x := e.(type) {
	case *ast.StringLit:
		return Value{Kind: StringVal, Str: x.Value}
	case *ast.IntLit:
		return Value{Kind: IntVal, Int: x.Value}
	case *ast.RealLit:
		return Value{Kind: RealVal, Real: x.Value}
	case *ast.BoolLit:
		return Value{Kind: BoolVal, Bool: x.Value}
	case *ast.FeatureRef:
		return Value{Kind: RefVal, Ref: x.Path.String()}
	}
	return Value{}
}

// ResolvedAttributes collects the attribute values visible on an
// instantiated part usage: for every attribute feature of the usage's type
// (including inherited ones), the value is taken from a member redefinition
// (":>> name = value") if present, else from the attribute's declared
// default, else omitted.
//
// This is how the configuration generator reads driver parameters such as
// ip and ip_port from "part emcoParameters : EMCOParameters { :>> ip = ... }".
func ResolvedAttributes(u *sema.Element) map[string]Value {
	out := map[string]Value{}
	if u == nil {
		return out
	}
	// Declared defaults from the type.
	if u.Type != nil {
		for _, f := range u.Type.EffectiveMembers() {
			if f.Kind == sema.KindAttributeUsage && f.Value != nil {
				out[f.Name] = Eval(f.Value)
			}
		}
	}
	// Direct attribute members with values, and redefinitions.
	for _, m := range u.Members {
		if m.Kind != sema.KindAttributeUsage {
			continue
		}
		if m.Value == nil {
			continue
		}
		v := Eval(m.Value)
		switch {
		case len(m.Redefines) > 0:
			for _, rd := range m.Redefines {
				out[rd.Name] = v
			}
		case m.Name != "":
			out[m.Name] = v
		}
	}
	return out
}

// AttributesOfType lists the attribute features (name and scalar type name)
// declared by a definition, including inherited ones.
func AttributesOfType(def *sema.Element) []Attribute {
	var out []Attribute
	if def == nil {
		return out
	}
	for _, f := range def.EffectiveMembers() {
		if f.Kind != sema.KindAttributeUsage {
			continue
		}
		a := Attribute{Name: f.Name, Direction: f.Direction}
		if f.Type != nil {
			a.TypeName = f.Type.Name
		}
		if f.Value != nil {
			a.Default = Eval(f.Value)
		}
		out = append(out, a)
	}
	return out
}

// Attribute describes one attribute feature of a definition.
type Attribute struct {
	Name      string
	TypeName  string
	Direction ast.Direction
	Default   Value
}

// PartsTyped returns the direct part-usage members of e whose type
// transitively specializes defName.
func PartsTyped(e *sema.Element, defName string) []*sema.Element {
	var out []*sema.Element
	for _, m := range e.Members {
		if m.Kind == sema.KindPartUsage && m.Type != nil && m.Type.SpecializesDef(defName) {
			out = append(out, m)
		}
	}
	return out
}

// FindFirst returns the first element in the subtree matching pred,
// depth-first, or nil.
func FindFirst(root *sema.Element, pred func(*sema.Element) bool) *sema.Element {
	var found *sema.Element
	root.Walk(func(e *sema.Element) bool {
		if found != nil {
			return false
		}
		if pred(e) {
			found = e
			return false
		}
		return true
	})
	return found
}

// Collect returns every element in the subtree matching pred, depth-first.
func Collect(root *sema.Element, pred func(*sema.Element) bool) []*sema.Element {
	var out []*sema.Element
	root.Walk(func(e *sema.Element) bool {
		if pred(e) {
			out = append(out, e)
		}
		return true
	})
	return out
}
