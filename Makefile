GO ?= go

# Tier-1 benchmark set tracked by the regression harness: the build side
# (full model analysis + generation, the 1x-8x scale sweep, the language
# front end), the data plane (broker fan-out, framed wire, historian
# ingest), the durability tier (WAL append, crash recovery), the historian
# serving tier (concurrent cached aggregate queries), the federated
# plant at 1000+ machines (cross-shard forward + bridge path) and the
# operations tier (campaign planner/executor steps/s over the fleet).
BENCH_PATTERN ?= BenchmarkTable1|BenchmarkAblationScale|BenchmarkParserThroughput|BenchmarkBrokerFanout|BenchmarkBrokerWire|BenchmarkHistorianIngest|BenchmarkHistorianQuery|BenchmarkWALAppend|BenchmarkHistorianRecovery|BenchmarkFederatedScale|BenchmarkCampaignThroughput
DATAPLANE_PATTERN = BenchmarkBrokerFanout|BenchmarkBrokerWire|BenchmarkHistorianIngest|BenchmarkHistorianQuery|BenchmarkWALAppend|BenchmarkHistorianRecovery
BENCH_DATE ?= $(shell date +%Y-%m-%d)
# Benchmark repetitions: BENCH_COUNT > 1 runs each benchmark N times and
# benchdiff -best-of keeps the fastest run, so the regression gate compares
# min-of-N instead of a single noisy sample.
BENCH_COUNT ?= 1
# Benchmarks whose ns/op measures a blocking round trip (scheduler wake-up
# latency) rather than pipelined throughput: benchdiff annotates their
# regressions as LATENCY-BOUND instead of failing the gate, since they swing
# with runner load far beyond the 15% threshold.
BENCH_LATENCY_BOUND ?= ^BenchmarkBrokerWireSync$$

.PHONY: build test check soak soak-federated soak-query soak-campaign bench benchdiff bench-full bench-dataplane bench-smoke fuzz

build:
	$(GO) build ./...

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

# Tier-2: vet + the full suite under the race detector (the supervision,
# chaos, snapshot and codegen worker-pool layers are concurrency-heavy).
# `go test` also replays the binary-decoder fuzz seed corpus (the f.Add
# seeds in internal/broker/fuzz_test.go) as regular tests.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Exploratory fuzzing of the binary wire decoder — corrupt, truncated and
# oversized frames against the mixed-framing reader and the frame codec.
# CI runs only the seed corpus (via `make check`); run this for minutes or
# hours when touching internal/wire framing or a protocol codec.
FUZZ_TIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzBinaryFrameDecode -fuzztime=$(FUZZ_TIME) -run='^$$' ./internal/broker/
	$(GO) test -fuzz=FuzzBinaryBodyRoundTrip -fuzztime=$(FUZZ_TIME) -run='^$$' ./internal/broker/

# Durability soak: the seeded chaos suites under the race detector — the
# zero-loss audit (historian crashes + broker partition, every sequence
# exactly once), the convergence soak and the partition-overlapped
# reconfigure. Longer than tier-1; run before touching the broker, the WAL
# or the supervision layers.
soak:
	$(GO) test -race -count=1 -v \
		-run 'TestChaosAuditZeroLoss|TestChaosSeededSoakConverges|TestReconfigureUnderPartitionConverges' \
		./internal/deploy/

# Federation soak: the multi-broker plant under the race detector — the
# cross-shard chaos audit (ingress node killed + bridge link partitioned,
# every sample exactly once), the federated deploy end-to-end, and the
# broker-level federation suite (forwarding dedup, bridge replay, link
# flaps). Run before touching the placement ring, the bridge links or the
# sharded deploy path.
soak-federated:
	$(GO) test -race -count=1 -v \
		-run 'TestFederatedChaosAuditZeroLoss|TestFederatedDeployEndToEnd' \
		./internal/deploy/
	$(GO) test -race -count=1 \
		-run 'TestFederation|TestNode' ./internal/broker/
	$(GO) test -race -count=1 ./internal/placement/

# Query soak: the historian serving tier under the race detector — the
# end-to-end HTTP query path over a deployed plant, and query traffic
# sustained while the broker partitions and historian pods are killed.
# Run before touching the query cache, the block encoder or the rollups.
soak-query:
	$(GO) test -race -count=1 -v \
		-run 'TestQueryAPIOverDeployedCluster|TestQueryUnderChaosSoak' \
		./internal/deploy/
	$(GO) test -race -count=1 -run 'TestQuery' ./internal/historian/

# Campaign soak: the operations tier under the race detector — the
# exact-completion chaos audit (machine kill mid-campaign + broker
# partition + reconfigure under load, exactly N parts reconciled against
# the historian), plus the executor suite (replanning, shortfall,
# restart-without-double-dispatch). Run before touching the planner, the
# executor or the ledger publisher.
soak-campaign:
	$(GO) test -race -count=1 -v \
		-run 'TestCampaignChaosAuditExactCompletion' \
		./internal/deploy/
	$(GO) test -race -count=1 ./internal/ops/

# Tier-3: run the tier-1 benchmarks, snapshot them to BENCH_<date>.json,
# and fail on a >15% ns/op regression against the latest committed snapshot.
bench:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=1s -count=$(BENCH_COUNT) . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/benchdiff -write BENCH_$(BENCH_DATE).json -compare-latest . -best-of $(BENCH_COUNT) -latency-bound '$(BENCH_LATENCY_BOUND)' < bench.out
	@rm -f bench.out

# Compare the two most recent snapshots without re-running benchmarks.
benchdiff:
	$(GO) run ./cmd/benchdiff \
		-prev $$(ls BENCH_*.json | sort | tail -n 2 | head -n 1) \
		-cur  $$(ls BENCH_*.json | sort | tail -n 1)

# Only the runtime data-plane benchmarks (broker, wire, historian) — quick
# feedback when iterating on the message path.
bench-dataplane:
	$(GO) test -run='^$$' -bench='$(DATAPLANE_PATTERN)' -benchmem -benchtime=1s .

# Smoke-run the hot-path benchmarks at a fixed tiny iteration count — PR CI
# uses this to prove the wire and fan-out paths still execute end to end
# (a hang or Fatal fails fast) without paying for a statistically
# meaningful -benchtime on shared runners. The federated case runs in its
# own invocation: -bench sub-patterns apply per slash level, and the
# shards= filter would otherwise hide BenchmarkBrokerFanout's sub-benches.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkBrokerWire|BenchmarkBrokerFanout|BenchmarkHistorianQuery' -benchtime=100x -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkFederatedScale/shards=4/machines=1000$$' -benchtime=100x -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkCampaignThroughput/shards=1$$' -benchtime=100x -benchmem .

# Every benchmark in the repo, including the slow end-to-end deploy loops.
bench-full:
	$(GO) test -bench=. -benchmem ./...
