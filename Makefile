GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

# Tier-2: vet + the full suite under the race detector (the supervision,
# chaos and snapshot tests are explicitly concurrency-heavy).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
