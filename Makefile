GO ?= go

# Tier-1 benchmark set tracked by the regression harness: the build side
# (full model analysis + generation, the 1x-8x scale sweep, the language
# front end) and the data plane (broker fan-out, framed wire, historian
# ingest).
BENCH_PATTERN ?= BenchmarkTable1|BenchmarkAblationScale|BenchmarkParserThroughput|BenchmarkBrokerFanout|BenchmarkBrokerWire|BenchmarkHistorianIngest
DATAPLANE_PATTERN = BenchmarkBrokerFanout|BenchmarkBrokerWire|BenchmarkHistorianIngest
BENCH_DATE ?= $(shell date +%Y-%m-%d)

.PHONY: build test check bench benchdiff bench-full bench-dataplane

build:
	$(GO) build ./...

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

# Tier-2: vet + the full suite under the race detector (the supervision,
# chaos, snapshot and codegen worker-pool layers are concurrency-heavy).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Tier-3: run the tier-1 benchmarks, snapshot them to BENCH_<date>.json,
# and fail on a >15% ns/op regression against the latest committed snapshot.
bench:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=1s . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/benchdiff -write BENCH_$(BENCH_DATE).json -compare-latest . < bench.out
	@rm -f bench.out

# Compare the two most recent snapshots without re-running benchmarks.
benchdiff:
	$(GO) run ./cmd/benchdiff \
		-prev $$(ls BENCH_*.json | sort | tail -n 2 | head -n 1) \
		-cur  $$(ls BENCH_*.json | sort | tail -n 1)

# Only the runtime data-plane benchmarks (broker, wire, historian) — quick
# feedback when iterating on the message path.
bench-dataplane:
	$(GO) test -run='^$$' -bench='$(DATAPLANE_PATTERN)' -benchmem -benchtime=1s .

# Every benchmark in the repo, including the slow end-to-end deploy loops.
bench-full:
	$(GO) test -bench=. -benchmem ./...
