package sysml2conf

import (
	"os"
	"testing"

	"github.com/smartfactory/sysml2conf/internal/sysml/parser"
	"github.com/smartfactory/sysml2conf/internal/sysml/printer"
)

// TestCommittedModelFile pins the committed running-example model
// (examples/models/millingcell.sysml, the paper's Codes 1-5): it must lint
// clean, generate a valid bundle, and stay canonically formatted.
func TestCommittedModelFile(t *testing.T) {
	const path = "examples/models/millingcell.sysml"
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)

	findings, err := Lint(path, src)
	if err != nil || len(findings) != 0 {
		t.Fatalf("lint: err=%v findings=%v", err, findings)
	}

	res, err := Run(src, Options{Filename: path})
	if err != nil {
		t.Fatal(err)
	}
	machines := res.Factory.Machines()
	if len(machines) != 2 {
		t.Fatalf("machines = %d, want 2 (emco + ur5)", len(machines))
	}
	byName := map[string]int{}
	for _, m := range machines {
		byName[m.Name] = len(m.Variables)
	}
	if byName["emco"] != 4 || byName["ur5"] != 2 {
		t.Errorf("variables per machine = %v", byName)
	}
	if res.Bundle.Summary.Servers != 1 {
		t.Errorf("servers = %d", res.Bundle.Summary.Servers)
	}
	if got := res.Factory.Machines()[0].Driver.Parameters["ip"].String(); got != "10.197.12.11" {
		t.Errorf("emco ip = %q", got)
	}

	// Canonical formatting (sysmlfmt -check would pass).
	f, err := parser.ParseFile(path, src)
	if err != nil {
		t.Fatal(err)
	}
	if printer.Print(f) != src {
		t.Error("committed model is not canonically formatted; run sysmlfmt -w")
	}
}
